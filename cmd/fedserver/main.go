// Command fedserver runs a federated routing service over HTTP: it assembles
// a traffic data federation, builds (or restores) the federated shortcut
// index and serves secure shortest-path, kNN and traffic-update requests.
//
//	fedserver -n 2000 -silos 3 -addr :8080
//
//	curl 'localhost:8080/route?s=12&t=1780'
//	curl 'localhost:8080/knn?s=12&k=5'
//	curl -X POST localhost:8080/traffic -d '[{"silo":0,"arc":17,"travel_ms":90000}]'
//	curl 'localhost:8080/stats'
//
// Serving-tier behavior (see DESIGN.md, "Serving tier"):
//
//   - -cache N keeps a traffic-version-keyed LRU of route/kNN results with
//     request coalescing; a traffic update invalidates it for free.
//   - -max-queue N sheds queries beyond maxConcurrent+N with 429 +
//     Retry-After instead of queueing without bound.
//   - -persist DIR snapshots the full federation state (weights, version,
//     index) and WAL-logs traffic deltas, so a restart skips the MPC index
//     rebuild and replays only what the snapshot missed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	fedroad "repro"
	"repro/internal/graph"
)

// loadNetwork resolves the served road network from the three mutually
// layered sources: an imported graph file, a named dataset, or a generated
// road-like network. unitWeights reports that the graph file carried no
// weight section and every travel time was fabricated as 1ms — the caller
// must surface that loudly.
func loadNetwork(dataset, graphF string, n int, seed uint64) (g *fedroad.Graph, w0 fedroad.Weights, unitWeights bool, err error) {
	switch {
	case graphF != "":
		g, w0, err = fedroad.LoadGraphFile(graphF)
		if err != nil {
			return nil, nil, false, err
		}
		if w0 == nil {
			w0 = make(fedroad.Weights, g.NumArcs())
			for a := range w0 {
				w0[a] = 1
			}
			unitWeights = true
		}
	case dataset != "":
		// GenerateDataset panics on unknown names (its callers are experiment
		// code with hard-wired names); a user-supplied -dataset must fail with
		// a clean error instead.
		if _, ok := graph.FindDataset(dataset); !ok {
			names := ""
			for i, spec := range graph.Datasets() {
				if i > 0 {
					names += ", "
				}
				names += spec.Name
			}
			return nil, nil, false, fmt.Errorf("unknown dataset %q (available: %s)", dataset, names)
		}
		g, w0, _ = graph.GenerateDataset(dataset)
	default:
		g, w0 = fedroad.GenerateRoadNetwork(n, seed)
	}
	return g, w0, unitWeights, nil
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		dataset  = flag.String("dataset", "", "named dataset (CAL-S, BJ-S, FLA-S)")
		graphF   = flag.String("graph", "", "serve an imported graph file (binary snapshot or text)")
		n        = flag.Int("n", 2000, "generated network size when no dataset/graph is given")
		silos    = flag.Int("silos", 3, "number of data silos")
		seed     = flag.Uint64("seed", 1, "random seed")
		noIndex  = flag.Bool("no-index", false, "skip building the shortcut index")
		idxWkrs  = flag.Int("index-workers", 0, "contraction workers for the parallel index build (0 = GOMAXPROCS)")
		custIdx  = flag.Bool("customize", false, "derive the shortcut index by weight customization over a topology-only skeleton (contract once per graph, customize per traffic version) instead of a full federated contraction")
		reindex  = flag.Duration("reindex-interval", 0, "periodically re-derive the index off-lock from live weights when traffic has moved — a customization sweep when a skeleton exists, a full rebuild otherwise (0 = disabled)")
		protocol = flag.Bool("protocol", false, "run the full MPC protocol per comparison (default: ideal mode with analytic cost accounting)")
		maxConc  = flag.Int("max-concurrent", 0, "max in-flight queries (0 = 4x GOMAXPROCS)")
		maxQueue = flag.Int("max-queue", 0, "queries allowed to queue beyond -max-concurrent before shedding with 429 (0 = unbounded queue, no shedding)")
		cacheCap = flag.Int("cache", 4096, "traffic-version-keyed result cache capacity in entries (0 = off)")
		persist  = flag.String("persist", "", "directory for state snapshots + traffic WAL; restarts restore the index without an MPC rebuild")
		pprofOn  = flag.Bool("pprof", false, "mount /debug/pprof/* profiling handlers")
		prepool  = flag.Int("prepool", 0, "preprocessing pool capacity in comparisons (0 = off)")
		poolWkrs = flag.Int("prepool-workers", 1, "preprocessing pool replenisher goroutines")

		roundTimeout = flag.Duration("round-timeout", 0, "per-frame MPC round timeout; a slow/dead silo fails the query with 503/504 instead of hanging it (protocol mode; 0 = no timeout)")
		sacRetries   = flag.Int("sac-retries", 0, "bounded retries of a Fed-SAC round after a transient transport failure")
		sacBackoff   = flag.Duration("sac-retry-backoff", 10*time.Millisecond, "backoff before the first Fed-SAC retry, doubled per retry")

		meshTCP = flag.Bool("mesh-tcp", false, "run MPC rounds over a loopback TCP mesh with multiplexed lanes, heartbeats and automatic redial (protocol mode; the deployment-shaped wire path)")
		tlsCert = flag.String("tls-cert", "", "silo certificate PEM for mutual-auth TLS on mesh links (requires -mesh-tcp, -tls-key and -tls-ca)")
		tlsKey  = flag.String("tls-key", "", "silo private key PEM for mesh mTLS")
		tlsCA   = flag.String("tls-ca", "", "federation CA PEM both directions of every mesh link verify against")
	)
	flag.Parse()

	g, w0, unitWeights, err := loadNetwork(*dataset, *graphF, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	if unitWeights {
		log.Printf("WARNING: graph file %q has no weight section — serving UNIT travel times (1ms per segment); every ETA is fabricated. Surfaced as unit_weights in /stats.", *graphF)
	}
	silosW := fedroad.SimulateCongestion(w0, *silos, fedroad.Moderate, *seed+1)
	cfg := fedroad.Config{
		Seed:              *seed,
		PreprocessPool:    *prepool,
		PreprocessWorkers: *poolWkrs,
		RoundTimeout:      *roundTimeout,
		SACRetries:        *sacRetries,
		SACRetryBackoff:   *sacBackoff,
	}
	if *protocol {
		cfg.Mode = fedroad.ModeProtocol
	}
	if *meshTCP {
		cfg.MeshTCP = true
		if !*protocol {
			fmt.Fprintln(os.Stderr, "fedserver: -mesh-tcp requires -protocol (ideal mode exchanges no messages)")
			os.Exit(1)
		}
	}
	if *tlsCert != "" || *tlsKey != "" || *tlsCA != "" {
		cfg.MeshTLS = &fedroad.TLSConfig{CertFile: *tlsCert, KeyFile: *tlsKey, CAFile: *tlsCA}
	}
	fed, err := fedroad.New(g, w0, silosW, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	defer fed.Close()
	log.Printf("federation: %d vertices, %d arcs, %d silos", g.NumVertices(), g.NumArcs(), *silos)
	if *meshTCP {
		sec := "plaintext"
		if cfg.MeshTLS.Enabled() {
			sec = "mTLS"
		}
		log.Printf("mesh: MPC rounds over loopback TCP (%s), %d physical links per silo", sec, *silos-1)
	}

	var pers *persister
	if *persist != "" {
		pers, err = newPersister(fed, *persist)
		if err == nil {
			_, err = pers.Restore()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
			os.Exit(1)
		}
		ps := pers.Stats()
		log.Printf("persist: restored from %s in %dms (index: %v, replayed deltas: %d)",
			*persist, ps.RestoreMs, ps.RestoredIndex, ps.ReplayedDeltas)
	}

	if *custIdx && !fed.HasSkeleton() {
		// Topology-only contraction: plaintext, no MPC, reusable for every
		// future traffic version. A restored customized index already carries
		// its skeleton, in which case this is skipped.
		start := time.Now()
		if err := fed.BuildSkeleton(fedroad.IndexParams{Workers: *idxWkrs}); err != nil {
			fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
			os.Exit(1)
		}
		sst := fed.SkeletonStats()
		log.Printf("skeleton: %d shortcuts in %v (plaintext topology contraction)",
			sst.Shortcuts, time.Since(start).Round(time.Millisecond))
	}
	if !*noIndex && !fed.HasIndex() {
		start := time.Now()
		if err := fed.BuildIndexWith(fedroad.IndexParams{Workers: *idxWkrs, CustomizeOnly: *custIdx}); err != nil {
			fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
			os.Exit(1)
		}
		st := fed.IndexStats()
		if st.Customized {
			log.Printf("index: %d shortcuts customized in %v (%d workers, %d levels, %d MPC rounds)",
				st.Shortcuts, time.Since(start).Round(time.Millisecond), st.Workers, st.Levels, st.SAC.Rounds)
		} else {
			log.Printf("index: %d shortcuts in %v (%d workers, %d contraction rounds)",
				st.Shortcuts, time.Since(start).Round(time.Millisecond), st.Workers, st.Rounds)
		}
	} else if fed.HasIndex() {
		log.Printf("index: restored from snapshot (%d shortcuts, customized: %v), MPC rebuild skipped",
			fed.IndexStats().Shortcuts, fed.IndexStats().Customized)
	}
	if pers != nil {
		// Fold the restored-or-built index and any replayed deltas into a
		// fresh snapshot so the next restart reads one file and zero deltas.
		if err := pers.Snapshot(); err != nil {
			fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
			os.Exit(1)
		}
	}

	srv := newServer(fed, *maxConc)
	srv.pprof = *pprofOn
	srv.unitWeights = unitWeights
	srv.persist = pers
	srv.setMaxQueue(*maxQueue)
	if *cacheCap > 0 {
		srv.enableCache(*cacheCap)
		log.Printf("result cache: %d entries, traffic-version keyed", *cacheCap)
	}
	defer srv.Close()
	if srv.pprof {
		log.Printf("pprof enabled at /debug/pprof/")
	}
	log.Printf("serving up to %d concurrent queries (max queue: %d)", cap(srv.sem), *maxQueue)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *reindex > 0 && !*noIndex {
		// Rolling index swap: re-derive the serving index from live weights on
		// a timer, entirely off-lock — queries keep flowing against the old
		// index until the replacement swaps in. With a skeleton the refresh is
		// a cheap customization sweep; traffic landing mid-pass is absorbed by
		// bounded conflict retries.
		go func() {
			tick := time.NewTicker(*reindex)
			defer tick.Stop()
			lastVer := fed.TrafficVersion()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				ver := fed.TrafficVersion()
				if ver == lastVer {
					continue // nothing moved; the index is already current
				}
				lastVer = ver
				prm := fedroad.IndexParams{Workers: *idxWkrs, RebuildOnConflict: 2}
				start := time.Now()
				var err error
				if fed.HasSkeleton() {
					err = fed.CustomizeIndexWith(prm)
				} else {
					err = fed.BuildIndexWith(prm)
				}
				if err != nil {
					log.Printf("reindex: %v", err)
					continue
				}
				st := fed.IndexStats()
				log.Printf("reindex: swapped in %v (customized: %v, %d MPC rounds)",
					time.Since(start).Round(time.Millisecond), st.Customized, st.SAC.Rounds)
			}
		}()
		log.Printf("reindex: rolling swap every %v (customization preferred when a skeleton exists)", *reindex)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on http://%s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight MPC queries finish (they
	// hold checked-out sessions), then close the session pool and snapshot.
	log.Printf("shutdown: draining in-flight queries")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: drain incomplete (%v), closing", err)
		httpSrv.Close()
	}
	srv.Close()
	if pers != nil {
		if err := pers.Snapshot(); err != nil {
			log.Printf("shutdown: final snapshot failed: %v", err)
		}
		pers.Close()
	}
	log.Printf("shutdown: complete")
}
