package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	fedroad "repro"
)

// server wraps a federation behind an HTTP API:
//
//	GET  /route?s=<v>&t=<v>[&estimator=..][&queue=..][&batched=1][&noindex=1]
//	GET  /knn?s=<v>&k=<n>
//	POST /traffic   body: [{"silo":0,"arc":17,"travel_ms":42000}, ...]
//	GET  /stats
//	GET  /healthz
//
// Queries run under a mutex: the underlying engines are not safe for
// concurrent use, and traffic updates must not interleave with searches
// (single-writer semantics a production gateway would enforce per
// federation).
type server struct {
	mu  sync.Mutex
	fed *fedroad.Federation
}

func newServer(fed *fedroad.Federation) *server { return &server{fed: fed} }

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /route", s.handleRoute)
	mux.HandleFunc("GET /knn", s.handleKNN)
	mux.HandleFunc("POST /traffic", s.handleTraffic)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

type routeResponse struct {
	Found         bool             `json:"found"`
	Path          []fedroad.Vertex `json:"path,omitempty"`
	Segments      int              `json:"segments"`
	MeanTravelSec float64          `json:"mean_travel_sec"`
	FedSACs       int64            `json:"fed_sacs"`
	MPCRounds     int64            `json:"mpc_rounds"`
	MPCBytes      int64            `json:"mpc_bytes"`
	SettledVerts  int              `json:"settled_vertices"`
	LocalMicros   int64            `json:"local_us"`
	NetworkMicros int64            `json:"simulated_network_us"`
}

func (s *server) vertexParam(r *http.Request, name string) (fedroad.Vertex, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 || v >= s.fed.Graph().NumVertices() {
		return 0, fmt.Errorf("parameter %q out of range [0,%d)", name, s.fed.Graph().NumVertices())
	}
	return fedroad.Vertex(v), nil
}

func queryOptions(r *http.Request) fedroad.QueryOptions {
	q := r.URL.Query()
	opt := fedroad.QueryOptions{
		Estimator:  fedroad.Estimator(q.Get("estimator")),
		Queue:      fedroad.QueueKind(q.Get("queue")),
		NoIndex:    q.Get("noindex") == "1",
		BatchedMPC: q.Get("batched") == "1",
	}
	return opt
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dst, err := s.vertexParam(r, "t")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	route, stats, err := s.fed.ShortestPath(src, dst, queryOptions(r))
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, s.toResponse(route, stats))
}

func (s *server) toResponse(route fedroad.Route, stats fedroad.Stats) routeResponse {
	resp := routeResponse{
		Found:         route.Found,
		FedSACs:       stats.SAC.Compares,
		MPCRounds:     stats.SAC.Rounds,
		MPCBytes:      stats.SAC.Bytes,
		SettledVerts:  stats.SettledVertices,
		LocalMicros:   stats.WallTime.Microseconds(),
		NetworkMicros: stats.SAC.SimNet.Microseconds(),
	}
	if route.Found {
		resp.Path = route.Path
		resp.Segments = len(route.Path) - 1
		resp.MeanTravelSec = float64(fedroad.JointCost(route)) / float64(s.fed.Silos()) / 1000
	}
	return resp
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > s.fed.Graph().NumVertices() {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parameter k out of range"))
		return
	}
	s.mu.Lock()
	routes, stats, err := s.fed.NearestNeighbors(src, k, queryOptions(r))
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]routeResponse, len(routes))
	for i, rt := range routes {
		out[i] = s.toResponse(rt, fedroad.Stats{})
	}
	writeJSON(w, struct {
		Results []routeResponse `json:"results"`
		FedSACs int64           `json:"fed_sacs"`
	}{out, stats.SAC.Compares})
}

type trafficChange struct {
	Silo     int         `json:"silo"`
	Arc      fedroad.Arc `json:"arc"`
	TravelMs int64       `json:"travel_ms"`
}

func (s *server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	var changes []trafficChange
	if err := json.NewDecoder(r.Body).Decode(&changes); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid body: %w", err))
		return
	}
	numArcs := s.fed.Graph().NumArcs()
	arcSet := map[fedroad.Arc]bool{}
	for _, c := range changes {
		if c.Silo < 0 || c.Silo >= s.fed.Silos() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("silo %d out of range", c.Silo))
			return
		}
		if c.Arc < 0 || int(c.Arc) >= numArcs {
			httpError(w, http.StatusBadRequest, fmt.Errorf("arc %d out of range", c.Arc))
			return
		}
		if c.TravelMs < 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("travel_ms must be positive"))
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range changes {
		s.fed.SetTraffic(c.Silo, c.Arc, c.TravelMs)
		arcSet[c.Arc] = true
	}
	arcs := make([]fedroad.Arc, 0, len(arcSet))
	for a := range arcSet {
		arcs = append(arcs, a)
	}
	start := time.Now()
	var updated any
	if s.fed.HasIndex() {
		stats, err := s.fed.UpdateIndex(arcs)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		updated = struct {
			ChangedArcs int   `json:"changed_arcs"`
			Reverified  int   `json:"reverified_vertices"`
			Added       int   `json:"added_shortcuts"`
			FedSACs     int64 `json:"fed_sacs"`
			Micros      int64 `json:"update_us"`
		}{stats.ChangedArcs, stats.ReverifiedVertices, stats.AddedShortcuts,
			stats.SAC.Compares, time.Since(start).Microseconds()}
	}
	writeJSON(w, struct {
		Applied int `json:"applied"`
		Index   any `json:"index_update,omitempty"`
	}{len(changes), updated})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.fed.IndexStats()
	writeJSON(w, struct {
		Vertices  int   `json:"vertices"`
		Arcs      int   `json:"arcs"`
		Silos     int   `json:"silos"`
		HasIndex  bool  `json:"has_index"`
		Shortcuts int   `json:"shortcuts"`
		BuildSACs int64 `json:"build_fed_sacs"`
	}{
		s.fed.Graph().NumVertices(), s.fed.Graph().NumArcs(), s.fed.Silos(),
		s.fed.HasIndex(), st.Shortcuts, st.SAC.Compares,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
