package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	fedroad "repro"
)

// server wraps a federation behind an HTTP API:
//
//	GET  /route?s=<v>&t=<v>[&estimator=..][&queue=..][&batched=1][&noindex=1]
//	GET  /knn?s=<v>&k=<n>
//	POST /traffic   body: [{"silo":0,"arc":17,"travel_ms":42000}, ...]
//	GET  /stats
//	GET  /healthz
//
// Queries run concurrently: each request checks out a query session (a
// private MPC engine fork over the shared federation state) from a pool, so
// N in-flight routes proceed in parallel while the federation's internal
// reader/writer lock keeps traffic updates from ever interleaving with a
// search. A semaphore bounds in-flight queries so a burst cannot pile up
// unbounded goroutines and engine forks.
type server struct {
	fed     *fedroad.Federation
	sem     chan struct{} // bounds in-flight queries
	queries atomic.Int64  // queries served (route + knn)

	// Sessions are reused through an explicit free-list rather than a
	// sync.Pool: a GC'd pool entry would leak its transport endpoints
	// (Close is never called on eviction) and pool entries forked before a
	// federation-level setting change (e.g. SetRealNetworkDelay) would keep
	// serving with stale settings indefinitely. The free-list closes every
	// session it evicts, discards poisoned sessions instead of repooling
	// them, and is drained by (*server).Close.
	mu        sync.Mutex
	free      []*fedroad.Session
	closed    bool
	discarded atomic.Int64 // poisoned sessions destroyed instead of repooled
}

// newServer builds a server bounding in-flight queries to maxConcurrent
// (<=0 selects 4×GOMAXPROCS).
func newServer(fed *fedroad.Federation, maxConcurrent int) *server {
	if maxConcurrent <= 0 {
		maxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	return &server{fed: fed, sem: make(chan struct{}, maxConcurrent)}
}

// checkout takes a session from the free-list, forking a fresh one when the
// list is empty.
func (s *server) checkout() (*fedroad.Session, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errServerClosed
	}
	var sess *fedroad.Session
	if n := len(s.free); n > 0 {
		sess = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	}
	s.mu.Unlock()
	if sess == nil {
		sess = s.fed.Session()
	}
	return sess, nil
}

// release returns a session to the free-list — unless it is poisoned (its
// MPC engine hit an unrecoverable transport failure: close it and let the
// next request fork a fresh one), the server is closed, or the list is
// already at capacity. Every evicted session is closed, never dropped.
func (s *server) release(sess *fedroad.Session) {
	if sess.Poisoned() {
		s.discarded.Add(1)
		sess.Close()
		return
	}
	s.mu.Lock()
	if !s.closed && len(s.free) < cap(s.sem) {
		s.free = append(s.free, sess)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	sess.Close()
}

// Close drains the free-list, closing every pooled session. In-flight
// sessions are closed by release when their query finishes.
func (s *server) Close() {
	s.mu.Lock()
	free := s.free
	s.free = nil
	s.closed = true
	s.mu.Unlock()
	for _, sess := range free {
		sess.Close()
	}
}

// withSession bounds concurrency and runs fn on a pooled query session,
// returning fn's error.
func (s *server) withSession(fn func(*fedroad.Session) error) error {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	sess, err := s.checkout()
	if err != nil {
		return err
	}
	s.queries.Add(1)
	err = fn(sess)
	s.release(sess)
	return err
}

// errServerClosed is returned by checkout after Close.
var errServerClosed = errors.New("server closed")

// queryStatus maps a query error to an HTTP status: a round timeout means a
// slow or dead silo (504), any other unrecoverable transport failure means
// the session died mid-protocol (503, and the session has been discarded —
// retrying on a fresh session may succeed); everything else is a client
// mistake (400).
func queryStatus(err error) int {
	switch {
	case fedroad.IsTimeout(err):
		return http.StatusGatewayTimeout
	case errors.Is(err, fedroad.ErrSessionPoisoned), errors.Is(err, errServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /route", s.handleRoute)
	mux.HandleFunc("GET /knn", s.handleKNN)
	mux.HandleFunc("POST /traffic", s.handleTraffic)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

type routeResponse struct {
	Found         bool             `json:"found"`
	Path          []fedroad.Vertex `json:"path,omitempty"`
	Segments      int              `json:"segments"`
	MeanTravelSec float64          `json:"mean_travel_sec"`
	FedSACs       int64            `json:"fed_sacs"`
	MPCRounds     int64            `json:"mpc_rounds"`
	MPCBytes      int64            `json:"mpc_bytes"`
	SettledVerts  int              `json:"settled_vertices"`
	LocalMicros   int64            `json:"local_us"`
	NetworkMicros int64            `json:"simulated_network_us"`
}

func (s *server) vertexParam(r *http.Request, name string) (fedroad.Vertex, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 || v >= s.fed.Graph().NumVertices() {
		return 0, fmt.Errorf("parameter %q out of range [0,%d)", name, s.fed.Graph().NumVertices())
	}
	return fedroad.Vertex(v), nil
}

func queryOptions(r *http.Request) fedroad.QueryOptions {
	q := r.URL.Query()
	opt := fedroad.QueryOptions{
		Estimator:  fedroad.Estimator(q.Get("estimator")),
		Queue:      fedroad.QueueKind(q.Get("queue")),
		NoIndex:    q.Get("noindex") == "1",
		BatchedMPC: q.Get("batched") == "1",
	}
	return opt
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dst, err := s.vertexParam(r, "t")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var route fedroad.Route
	var stats fedroad.Stats
	err = s.withSession(func(sess *fedroad.Session) error {
		var qerr error
		route, stats, qerr = sess.ShortestPath(src, dst, queryOptions(r))
		return qerr
	})
	if err != nil {
		httpError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, s.toResponse(route, stats))
}

func (s *server) toResponse(route fedroad.Route, stats fedroad.Stats) routeResponse {
	resp := routeResponse{
		Found:         route.Found,
		FedSACs:       stats.SAC.Compares,
		MPCRounds:     stats.SAC.Rounds,
		MPCBytes:      stats.SAC.Bytes,
		SettledVerts:  stats.SettledVertices,
		LocalMicros:   stats.WallTime.Microseconds(),
		NetworkMicros: stats.SAC.SimNet.Microseconds(),
	}
	if route.Found {
		resp.Path = route.Path
		resp.Segments = len(route.Path) - 1
		resp.MeanTravelSec = float64(fedroad.JointCost(route)) / float64(s.fed.Silos()) / 1000
	}
	return resp
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > s.fed.Graph().NumVertices() {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parameter k out of range"))
		return
	}
	var routes []fedroad.Route
	var stats fedroad.Stats
	err = s.withSession(func(sess *fedroad.Session) error {
		var qerr error
		routes, stats, qerr = sess.NearestNeighbors(src, k, queryOptions(r))
		return qerr
	})
	if err != nil {
		httpError(w, queryStatus(err), err)
		return
	}
	out := make([]routeResponse, len(routes))
	for i, rt := range routes {
		out[i] = s.toResponse(rt, fedroad.Stats{})
	}
	writeJSON(w, struct {
		Results []routeResponse `json:"results"`
		FedSACs int64           `json:"fed_sacs"`
	}{out, stats.SAC.Compares})
}

type trafficChange struct {
	Silo     int         `json:"silo"`
	Arc      fedroad.Arc `json:"arc"`
	TravelMs int64       `json:"travel_ms"`
}

func (s *server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	var changes []trafficChange
	if err := json.NewDecoder(r.Body).Decode(&changes); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid body: %w", err))
		return
	}
	// Validate everything before taking any lock so malformed requests get a
	// 400 without ever touching federation state (silo/arc out of range or a
	// travel time outside (0, MaxTravelMs) would otherwise panic deep in the
	// weight setter).
	numArcs := s.fed.Graph().NumArcs()
	updates := make([]fedroad.TrafficUpdate, len(changes))
	for i, c := range changes {
		if c.Silo < 0 || c.Silo >= s.fed.Silos() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("silo %d out of range", c.Silo))
			return
		}
		if c.Arc < 0 || int(c.Arc) >= numArcs {
			httpError(w, http.StatusBadRequest, fmt.Errorf("arc %d out of range", c.Arc))
			return
		}
		if c.TravelMs < 1 || c.TravelMs >= fedroad.MaxTravelMs {
			httpError(w, http.StatusBadRequest, fmt.Errorf("travel_ms %d outside (0,%d)", c.TravelMs, fedroad.MaxTravelMs))
			return
		}
		updates[i] = fedroad.TrafficUpdate{Silo: c.Silo, Arc: c.Arc, TravelMs: c.TravelMs}
	}
	start := time.Now()
	hadIndex := s.fed.HasIndex()
	stats, err := s.fed.ApplyTraffic(updates)
	if err != nil {
		// Validation re-runs inside ApplyTraffic and tags its rejections
		// with ErrInvalidUpdate — those are the client's fault. Anything
		// else (a shortcut-index refresh failure after the weights were
		// already validated) is an internal server failure.
		code := http.StatusInternalServerError
		if errors.Is(err, fedroad.ErrInvalidUpdate) {
			code = http.StatusBadRequest
		}
		httpError(w, code, err)
		return
	}
	var updated any
	if hadIndex {
		updated = struct {
			ChangedArcs int   `json:"changed_arcs"`
			Reverified  int   `json:"reverified_vertices"`
			Added       int   `json:"added_shortcuts"`
			FedSACs     int64 `json:"fed_sacs"`
			Micros      int64 `json:"update_us"`
		}{stats.ChangedArcs, stats.ReverifiedVertices, stats.AddedShortcuts,
			stats.SAC.Compares, time.Since(start).Microseconds()}
	}
	writeJSON(w, struct {
		Applied int `json:"applied"`
		Index   any `json:"index_update,omitempty"`
	}{len(changes), updated})
}

// pooledIdle reports how many sessions sit in the free-list right now.
func (s *server) pooledIdle() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.fed.IndexStats()
	pool := s.fed.PoolStats()
	writeJSON(w, struct {
		Vertices      int   `json:"vertices"`
		Arcs          int   `json:"arcs"`
		Silos         int   `json:"silos"`
		HasIndex      bool  `json:"has_index"`
		Shortcuts     int   `json:"shortcuts"`
		BuildSACs     int64 `json:"build_fed_sacs"`
		QueriesServed int64 `json:"queries_served"`
		MaxConcurrent int   `json:"max_concurrent"`
		PooledIdle    int   `json:"pooled_sessions"`
		Discarded     int64 `json:"poisoned_sessions_discarded"`
		PoolProduced  int64 `json:"prepool_produced"`
		PoolHits      int64 `json:"prepool_hits"`
		PoolMisses    int64 `json:"prepool_misses"`
	}{
		s.fed.Graph().NumVertices(), s.fed.Graph().NumArcs(), s.fed.Silos(),
		s.fed.HasIndex(), st.Shortcuts, st.SAC.Compares,
		s.queries.Load(), cap(s.sem),
		s.pooledIdle(), s.discarded.Load(),
		pool.Produced, pool.Hits, pool.Misses,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
