package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	fedroad "repro"
	"repro/internal/admit"
	"repro/internal/ch"
	"repro/internal/metrics"
)

// server wraps a federation behind an HTTP API:
//
//	GET  /route?s=<v>&t=<v>[&estimator=..][&queue=..][&batched=1][&noindex=1]
//	GET  /knn?s=<v>&k=<n>[&queue=..][&batched=1]
//	POST /traffic   body: [{"silo":0,"arc":17,"travel_ms":42000}, ...]
//	GET  /stats
//	GET  /metrics   (Prometheus text exposition)
//	GET  /healthz
//	GET  /debug/pprof/*   (only with -pprof)
//
// Queries run concurrently: each request checks out a query session (a
// private MPC engine fork over the shared federation state) from a pool, so
// N in-flight routes proceed in parallel while the federation's internal
// reader/writer lock keeps traffic updates from ever interleaving with a
// search. A semaphore bounds in-flight queries so a burst cannot pile up
// unbounded goroutines and engine forks.
type server struct {
	fed     *fedroad.Federation
	sem     chan struct{} // bounds in-flight queries
	queries atomic.Int64  // queries served (route + knn)
	pprof   bool          // mount /debug/pprof/* handlers

	// gate is the admission control in front of the semaphore: the semaphore
	// bounds RUNNING queries (and blocks the excess), the gate bounds the
	// whole in-system population (running + queued) and sheds beyond it with
	// 429 + Retry-After instead of letting latency collapse. Always non-nil;
	// with -max-queue 0 it only counts.
	gate *admit.Gate
	// cache, when non-nil (-cache > 0), is the traffic-version-keyed result
	// cache: hits and coalesced waiters skip the gate, the semaphore and the
	// MPC engine entirely.
	cache *fedroad.QueryCache
	// persist, when non-nil (-persist), logs every applied traffic batch to
	// the WAL and owns the snapshot/restore cycle.
	persist *persister
	// unitWeights records that the served graph file carried no weights and
	// travel times were fabricated as 1ms per segment — surfaced in /stats so
	// nobody mistakes routes on a real topology for real ETAs.
	unitWeights bool
	// ewmaQueryMicros tracks a decaying average query latency, the basis of
	// the Retry-After hint on shed responses.
	ewmaQueryMicros atomic.Int64

	// Sessions are reused through an explicit free-list rather than a
	// sync.Pool: a GC'd pool entry would leak its transport endpoints
	// (Close is never called on eviction) and pool entries forked before a
	// federation-level setting change (e.g. SetRealNetworkDelay) would keep
	// serving with stale settings indefinitely. The free-list closes every
	// session it evicts, discards poisoned sessions instead of repooling
	// them, and is drained by (*server).Close.
	mu        sync.Mutex
	free      []*fedroad.Session
	closed    bool
	discarded atomic.Int64 // poisoned sessions destroyed instead of repooled

	// Session-pool and HTTP metrics live in the federation's registry, so
	// GET /metrics exposes the full picture with one scrape.
	mCheckouts *metrics.Counter // sessions handed to queries
	mForks     *metrics.Counter // fresh sessions forked (free-list misses)
	mEvicted   *metrics.Counter // healthy sessions closed (list full / server closed)
	mDiscarded *metrics.Counter // poisoned sessions destroyed
}

// newServer builds a server bounding in-flight queries to maxConcurrent
// (<=0 selects 4×GOMAXPROCS).
func newServer(fed *fedroad.Federation, maxConcurrent int) *server {
	if maxConcurrent <= 0 {
		maxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	s := &server{fed: fed, sem: make(chan struct{}, maxConcurrent)}
	s.setMaxQueue(0)
	reg := fed.Metrics()
	reg.CounterFunc("fedserver_admitted_total", "queries admitted past the admission gate", nil,
		func() float64 { return float64(s.gate.Stats().Admitted) })
	reg.CounterFunc("fedserver_shed_total", "queries shed by the admission gate (429)", nil,
		func() float64 { return float64(s.gate.Stats().Shed) })
	reg.GaugeFunc("fedserver_queue_depth", "queries in the system (running + queued)", nil,
		func() float64 { return float64(s.gate.Stats().Depth) })
	s.mCheckouts = reg.Counter("fedserver_sessions_checked_out_total", "query sessions handed to requests", nil)
	s.mForks = reg.Counter("fedserver_sessions_forked_total", "fresh query sessions forked on free-list miss", nil)
	s.mEvicted = reg.Counter("fedserver_sessions_evicted_total", "healthy sessions closed because the free-list was full or the server closed", nil)
	s.mDiscarded = reg.Counter("fedserver_sessions_discarded_total", "poisoned sessions destroyed instead of repooled", nil)
	reg.GaugeFunc("fedserver_sessions_idle", "sessions currently parked in the free-list", nil,
		func() float64 { return float64(s.pooledIdle()) })
	reg.GaugeFunc("fedserver_max_concurrent", "in-flight query bound", nil,
		func() float64 { return float64(cap(s.sem)) })
	return s
}

// setMaxQueue (re)builds the admission gate: maxQueue > 0 bounds the
// in-system population to maxConcurrent running plus maxQueue queued; 0
// disables shedding (the gate still counts). The gate is prepool-aware: with
// a preprocessing pool configured, a dry pool halves the effective limit,
// shedding earlier exactly when every admitted query is at its slowest.
func (s *server) setMaxQueue(maxQueue int) {
	limit := 0
	if maxQueue > 0 {
		limit = cap(s.sem) + maxQueue
	}
	var poolDepth func() int
	if s.fed.HasPool() {
		fed := s.fed
		poolDepth = func() int { return int(fed.PoolStats().Buffered) }
	}
	s.gate = admit.New(limit, poolDepth)
}

// enableCache installs a traffic-version-keyed result cache of the given
// capacity (entries) and registers its fedroad_cache_* metrics.
func (s *server) enableCache(capacity int) {
	s.cache = s.fed.NewQueryCache(capacity)
}

// checkout takes a session from the free-list, forking a fresh one when the
// list is empty.
func (s *server) checkout() (*fedroad.Session, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errServerClosed
	}
	var sess *fedroad.Session
	if n := len(s.free); n > 0 {
		sess = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	}
	s.mu.Unlock()
	if sess == nil {
		sess = s.fed.Session()
		s.mForks.Inc()
	}
	s.mCheckouts.Inc()
	return sess, nil
}

// release returns a session to the free-list — unless it is poisoned (its
// MPC engine hit an unrecoverable transport failure: close it and let the
// next request fork a fresh one), the server is closed, or the list is
// already at capacity. Every evicted session is closed, never dropped.
func (s *server) release(sess *fedroad.Session) {
	if sess.Poisoned() {
		s.discarded.Add(1)
		s.mDiscarded.Inc()
		sess.Close()
		return
	}
	s.mu.Lock()
	if !s.closed && len(s.free) < cap(s.sem) {
		s.free = append(s.free, sess)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.mEvicted.Inc()
	sess.Close()
}

// Close drains the free-list, closing every pooled session. In-flight
// sessions are closed by release when their query finishes.
func (s *server) Close() {
	s.mu.Lock()
	free := s.free
	s.free = nil
	s.closed = true
	s.mu.Unlock()
	for _, sess := range free {
		sess.Close()
	}
}

// withSession admits the request, bounds concurrency and runs fn on a pooled
// query session, returning fn's error. The gate is taken BEFORE the
// semaphore: a shed request never blocks, and the gate's depth counts both
// the queued (blocked on sem) and the running. On the cached path this runs
// inside the flight leader's closure, so cache hits and coalesced waiters
// consume no admission slot.
func (s *server) withSession(fn func(*fedroad.Session) error) error {
	if err := s.gate.Acquire(); err != nil {
		return err
	}
	defer s.gate.Release()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	sess, err := s.checkout()
	if err != nil {
		return err
	}
	s.queries.Add(1)
	start := time.Now()
	err = fn(sess)
	s.observeLatency(time.Since(start))
	s.release(sess)
	return err
}

// observeLatency folds one query's wall time into the decaying average
// behind Retry-After (EWMA, alpha 1/8; lossy racing updates are fine for a
// hint).
func (s *server) observeLatency(d time.Duration) {
	us := d.Microseconds()
	old := s.ewmaQueryMicros.Load()
	if old == 0 {
		s.ewmaQueryMicros.Store(us)
		return
	}
	s.ewmaQueryMicros.Store(old + (us-old)/8)
}

// retryAfterSec estimates when a shed client should retry: the current
// backlog divided by the service rate, clamped to [1s, 30s].
func (s *server) retryAfterSec() int {
	depth := s.gate.Stats().Depth
	ewma := s.ewmaQueryMicros.Load()
	sec := int(depth * ewma / int64(cap(s.sem)) / 1e6)
	if sec < 1 {
		return 1
	}
	if sec > 30 {
		return 30
	}
	return sec
}

// writeQueryError renders a query error, attaching the Retry-After hint to
// shed responses.
func (s *server) writeQueryError(w http.ResponseWriter, err error) {
	code := queryStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSec()))
	}
	httpError(w, code, err)
}

// errServerClosed is returned by checkout after Close.
var errServerClosed = errors.New("server closed")

// queryStatus maps a query error to an HTTP status: a round timeout means a
// slow or dead silo (504); any other unrecoverable transport failure means
// the session died mid-protocol (503, and the session has been discarded —
// retrying on a fresh session may succeed); a request-level mistake (bad
// option combination, vertex out of range) is tagged ErrInvalidQuery by the
// library (400). Everything else — e.g. an engine-construction failure after
// a config change — is an internal server error, NOT the client's fault
// (500).
func queryStatus(err error) int {
	switch {
	case errors.Is(err, admit.ErrShed):
		return http.StatusTooManyRequests
	case fedroad.IsTimeout(err):
		return http.StatusGatewayTimeout
	case errors.Is(err, fedroad.ErrSessionPoisoned), errors.Is(err, errServerClosed),
		errors.Is(err, fedroad.ErrPeerDown):
		// ErrPeerDown normally reaches callers wrapped in ErrSessionPoisoned
		// (the engine poisons fast on a dead link), but a raw mesh error —
		// e.g. a session dial racing a redial — maps the same way: the
		// federation is temporarily degraded, retry on a fresh session.
		return http.StatusServiceUnavailable
	case errors.Is(err, fedroad.ErrInvalidQuery):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// statusWriter captures the response status for request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrumented wraps a handler with per-endpoint request counting (by status
// class) and a latency histogram.
func (s *server) instrumented(path string, h http.HandlerFunc) http.HandlerFunc {
	reg := s.fed.Metrics()
	lat := reg.Histogram("fedserver_http_request_seconds", "HTTP request latency by endpoint", nil,
		metrics.Labels{"path": path})
	byClass := make(map[int]*metrics.Counter)
	for _, class := range []int{2, 4, 5} {
		byClass[class] = reg.Counter("fedserver_http_requests_total", "HTTP requests by endpoint and status class",
			metrics.Labels{"path": path, "code": fmt.Sprintf("%dxx", class)})
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		lat.Observe(time.Since(start).Seconds())
		if c, ok := byClass[sw.status/100]; ok {
			c.Inc()
		}
	}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /route", s.instrumented("/route", s.handleRoute))
	mux.HandleFunc("GET /knn", s.instrumented("/knn", s.handleKNN))
	mux.HandleFunc("POST /traffic", s.instrumented("/traffic", s.handleTraffic))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// queryCost is the per-query cost block shared by /route (inlined) and /knn
// (one aggregate for the whole Fed-SSSP run). Every field is a measurement
// of the actual query — fabricating zeros is exactly the bug this struct's
// split replaced.
type queryCost struct {
	FedSACs        int64 `json:"fed_sacs"`
	MPCRounds      int64 `json:"mpc_rounds"`
	MPCBytes       int64 `json:"mpc_bytes"`
	SettledVerts   int   `json:"settled_vertices"`
	HeuristicEvals int   `json:"heuristic_evals"`
	LocalMicros    int64 `json:"local_us"`
	QueueMicros    int64 `json:"queue_us"`
	SACWaitMicros  int64 `json:"sac_wait_us"`
	RelaxMicros    int64 `json:"relax_us"`
	NetworkMicros  int64 `json:"simulated_network_us"`
}

func costOf(stats fedroad.Stats) queryCost {
	return queryCost{
		FedSACs:        stats.SAC.Compares,
		MPCRounds:      stats.SAC.Rounds,
		MPCBytes:       stats.SAC.Bytes,
		SettledVerts:   stats.SettledVertices,
		HeuristicEvals: stats.HeuristicEvals,
		LocalMicros:    stats.WallTime.Microseconds(),
		QueueMicros:    stats.Phases.Queue.Microseconds(),
		SACWaitMicros:  stats.Phases.SACWait.Microseconds(),
		RelaxMicros:    stats.Phases.Relax.Microseconds(),
		NetworkMicros:  stats.SAC.SimNet.Microseconds(),
	}
}

type routeResponse struct {
	Found         bool             `json:"found"`
	Path          []fedroad.Vertex `json:"path,omitempty"`
	Segments      int              `json:"segments"`
	MeanTravelSec float64          `json:"mean_travel_sec"`
	// TrafficVersion is the traffic version the answer was computed at,
	// captured under the query's own read lock — the anchor for staleness
	// checks. Cached ("hit", "miss", "coalesced") is set when the result
	// cache is enabled; on hits the cost block replays the computing query's
	// counters (this request spent none).
	TrafficVersion uint64 `json:"traffic_version"`
	Cached         string `json:"cached,omitempty"`
	queryCost
}

// knnNeighbor is one kNN result: route fields only. Per-query cost counters
// live once in knnResponse.Stats — a per-neighbor breakdown does not exist
// (the k routes come out of ONE Fed-SSSP run), so none is reported.
type knnNeighbor struct {
	Found         bool             `json:"found"`
	Path          []fedroad.Vertex `json:"path,omitempty"`
	Segments      int              `json:"segments"`
	MeanTravelSec float64          `json:"mean_travel_sec"`
}

type knnResponse struct {
	Results        []knnNeighbor `json:"results"`
	Stats          queryCost     `json:"stats"`
	TrafficVersion uint64        `json:"traffic_version"`
	Cached         string        `json:"cached,omitempty"`
}

func (s *server) vertexParam(r *http.Request, name string) (fedroad.Vertex, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 || v >= s.fed.Graph().NumVertices() {
		return 0, fmt.Errorf("parameter %q out of range [0,%d)", name, s.fed.Graph().NumVertices())
	}
	return fedroad.Vertex(v), nil
}

func queryOptions(r *http.Request) fedroad.QueryOptions {
	q := r.URL.Query()
	opt := fedroad.QueryOptions{
		Estimator:  fedroad.Estimator(q.Get("estimator")),
		Queue:      fedroad.QueueKind(q.Get("queue")),
		NoIndex:    q.Get("noindex") == "1",
		BatchedMPC: q.Get("batched") == "1",
	}
	return opt
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dst, err := s.vertexParam(r, "t")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opt := queryOptions(r)
	run := func() (fedroad.Route, fedroad.Stats, uint64, error) {
		var route fedroad.Route
		var stats fedroad.Stats
		var ver uint64
		err := s.withSession(func(sess *fedroad.Session) error {
			var qerr error
			route, stats, ver, qerr = sess.ShortestPathAt(src, dst, opt)
			return qerr
		})
		return route, stats, ver, err
	}
	var route fedroad.Route
	var stats fedroad.Stats
	var ver uint64
	var cached string
	if s.cache != nil {
		var out fedroad.CacheOutcome
		route, stats, ver, out, err = s.cache.ShortestPath(src, dst, opt, run)
		cached = out.String()
	} else {
		route, stats, ver, err = run()
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	resp := s.toResponse(route, stats)
	resp.TrafficVersion = ver
	resp.Cached = cached
	writeJSON(w, resp)
}

func (s *server) toResponse(route fedroad.Route, stats fedroad.Stats) routeResponse {
	resp := routeResponse{queryCost: costOf(stats)}
	resp.Found = route.Found
	if route.Found {
		resp.Path = route.Path
		resp.Segments = len(route.Path) - 1
		resp.MeanTravelSec = float64(fedroad.JointCost(route)) / float64(s.fed.Silos()) / 1000
	}
	return resp
}

// toNeighbor renders one kNN route without any cost fields.
func (s *server) toNeighbor(route fedroad.Route) knnNeighbor {
	n := knnNeighbor{Found: route.Found}
	if route.Found {
		n.Path = route.Path
		n.Segments = len(route.Path) - 1
		n.MeanTravelSec = float64(fedroad.JointCost(route)) / float64(s.fed.Silos()) / 1000
	}
	return n
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > s.fed.Graph().NumVertices() {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parameter k out of range"))
		return
	}
	opt := queryOptions(r)
	run := func() ([]fedroad.Route, fedroad.Stats, uint64, error) {
		var routes []fedroad.Route
		var stats fedroad.Stats
		var ver uint64
		err := s.withSession(func(sess *fedroad.Session) error {
			var qerr error
			routes, stats, ver, qerr = sess.NearestNeighborsAt(src, k, opt)
			return qerr
		})
		return routes, stats, ver, err
	}
	var routes []fedroad.Route
	var stats fedroad.Stats
	var ver uint64
	var cached string
	if s.cache != nil {
		var co fedroad.CacheOutcome
		routes, stats, ver, co, err = s.cache.NearestNeighbors(src, k, opt, run)
		cached = co.String()
	} else {
		routes, stats, ver, err = run()
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	// One Fed-SSSP run produced all k routes; its cost is reported once, not
	// fabricated per neighbor.
	out := knnResponse{Results: make([]knnNeighbor, len(routes)), Stats: costOf(stats),
		TrafficVersion: ver, Cached: cached}
	for i, rt := range routes {
		out.Results[i] = s.toNeighbor(rt)
	}
	writeJSON(w, out)
}

type trafficChange struct {
	Silo     int         `json:"silo"`
	Arc      fedroad.Arc `json:"arc"`
	TravelMs int64       `json:"travel_ms"`
}

func (s *server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	var changes []trafficChange
	if err := json.NewDecoder(r.Body).Decode(&changes); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid body: %w", err))
		return
	}
	// Validate everything before taking any lock so malformed requests get a
	// 400 without ever touching federation state (silo/arc out of range or a
	// travel time outside (0, MaxTravelMs) would otherwise panic deep in the
	// weight setter).
	numArcs := s.fed.Graph().NumArcs()
	updates := make([]fedroad.TrafficUpdate, len(changes))
	for i, c := range changes {
		if c.Silo < 0 || c.Silo >= s.fed.Silos() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("silo %d out of range", c.Silo))
			return
		}
		if c.Arc < 0 || int(c.Arc) >= numArcs {
			httpError(w, http.StatusBadRequest, fmt.Errorf("arc %d out of range", c.Arc))
			return
		}
		if c.TravelMs < 1 || c.TravelMs >= fedroad.MaxTravelMs {
			httpError(w, http.StatusBadRequest, fmt.Errorf("travel_ms %d outside (0,%d)", c.TravelMs, fedroad.MaxTravelMs))
			return
		}
		updates[i] = fedroad.TrafficUpdate{Silo: c.Silo, Arc: c.Arc, TravelMs: c.TravelMs}
	}
	start := time.Now()
	hadIndex := s.fed.HasIndex()
	stats, err := s.applyTraffic(updates)
	if err != nil {
		// Validation re-runs inside ApplyTraffic and tags its rejections
		// with ErrInvalidUpdate — those are the client's fault. Anything
		// else (a shortcut-index refresh failure after the weights were
		// already validated) is an internal server failure.
		code := http.StatusInternalServerError
		if errors.Is(err, fedroad.ErrInvalidUpdate) {
			code = http.StatusBadRequest
		}
		httpError(w, code, err)
		return
	}
	var updated any
	if hadIndex {
		updated = struct {
			ChangedArcs int   `json:"changed_arcs"`
			Reverified  int   `json:"reverified_vertices"`
			Added       int   `json:"added_shortcuts"`
			FedSACs     int64 `json:"fed_sacs"`
			Micros      int64 `json:"update_us"`
		}{stats.ChangedArcs, stats.ReverifiedVertices, stats.AddedShortcuts,
			stats.SAC.Compares, time.Since(start).Microseconds()}
	}
	writeJSON(w, struct {
		Applied int `json:"applied"`
		Index   any `json:"index_update,omitempty"`
	}{len(changes), updated})
}

// applyTraffic routes a traffic batch through the persister when -persist is
// on (apply + durable WAL append under one mutex) and straight to the
// federation otherwise.
func (s *server) applyTraffic(updates []fedroad.TrafficUpdate) (ch.UpdateStats, error) {
	if s.persist != nil {
		return s.persist.Apply(updates)
	}
	return s.fed.ApplyTraffic(updates)
}

// pooledIdle reports how many sessions sit in the free-list right now.
func (s *server) pooledIdle() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// cacheStatsJSON is the /stats cache block.
type cacheStatsJSON struct {
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Coalesced       uint64 `json:"coalesced"`
	EvictedCapacity uint64 `json:"evicted_capacity"`
	EvictedStale    uint64 `json:"evicted_stale"`
	Entries         int    `json:"entries"`
}

// admitStatsJSON is the /stats admission block.
type admitStatsJSON struct {
	Limit    int64 `json:"limit"` // 0 = shedding disabled
	Depth    int64 `json:"queue_depth"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// meshLinkJSON is one endpoint→peer link's /stats entry.
type meshLinkJSON struct {
	Party           int   `json:"party"`
	Peer            int   `json:"peer"`
	Up              bool  `json:"up"`
	Reconnects      int64 `json:"reconnects"`
	HeartbeatMisses int64 `json:"heartbeat_misses"`
	DialFailures    int64 `json:"dial_failures"`
	BytesSent       int64 `json:"bytes_sent"`
	BytesRecv       int64 `json:"bytes_recv"`
}

// meshStatsJSON is the /stats mesh-transport block (only present with
// -mesh-tcp).
type meshStatsJSON struct {
	LinksUp         int            `json:"links_up"`
	Reconnects      int64          `json:"reconnects"`
	HeartbeatMisses int64          `json:"heartbeat_misses"`
	BytesSent       int64          `json:"bytes_sent"`
	MessagesSent    int64          `json:"messages_sent"`
	Links           []meshLinkJSON `json:"links"`
}

// meshBlock renders the federation's mesh counters, or nil without a mesh.
func (s *server) meshBlock() *meshStatsJSON {
	stats := s.fed.MeshStats()
	if stats == nil {
		return nil
	}
	out := &meshStatsJSON{}
	for _, ep := range stats {
		out.LinksUp += ep.LinksUp
		out.Reconnects += ep.Reconnects
		out.HeartbeatMisses += ep.HeartbeatMisses
		out.BytesSent += ep.BytesSent
		out.MessagesSent += ep.MsgsSent
		for _, p := range ep.Peers {
			out.Links = append(out.Links, meshLinkJSON{
				Party: ep.Party, Peer: p.Peer, Up: p.Up,
				Reconnects: p.Reconnects, HeartbeatMisses: p.HeartbeatMisses,
				DialFailures: p.DialFailures,
				BytesSent:    p.BytesSent, BytesRecv: p.BytesRecv,
			})
		}
	}
	return out
}

// customizeStatsJSON is the /stats view of the contract-once /
// customize-per-metric pipeline: whether a topology skeleton is available,
// whether the serving index came out of a customization sweep, and the
// latency / MPC-round cost of the most recent pass.
type customizeStatsJSON struct {
	HasSkeleton     bool  `json:"has_skeleton"`
	IndexCustomized bool  `json:"index_customized"`
	Passes          int64 `json:"passes"`
	LastWallMs      int64 `json:"last_wall_ms"`
	LastMPCRounds   int64 `json:"last_mpc_rounds"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.fed.IndexStats()
	ci := s.fed.CustomizeInfo()
	custBlock := customizeStatsJSON{
		HasSkeleton:     s.fed.HasSkeleton(),
		IndexCustomized: st.Customized,
		Passes:          ci.Customizes,
		LastWallMs:      ci.LastWallMs,
		LastMPCRounds:   ci.LastMPCRounds,
	}
	pool := s.fed.PoolStats()
	gs := s.gate.Stats()
	var cacheBlock *cacheStatsJSON
	if s.cache != nil {
		cs := s.cache.Stats()
		cacheBlock = &cacheStatsJSON{
			Hits: cs.Hits, Misses: cs.Misses, Coalesced: cs.Coalesced,
			EvictedCapacity: cs.EvictedCapacity, EvictedStale: cs.EvictedStale,
			Entries: cs.Entries,
		}
	}
	var persistBlock *persistStats
	if s.persist != nil {
		ps := s.persist.Stats()
		persistBlock = &ps
	}
	writeJSON(w, struct {
		Vertices       int                `json:"vertices"`
		Arcs           int                `json:"arcs"`
		Silos          int                `json:"silos"`
		HasIndex       bool               `json:"has_index"`
		IndexBuilding  bool               `json:"index_building"`
		Shortcuts      int                `json:"shortcuts"`
		BuildSACs      int64              `json:"build_fed_sacs"`
		Customize      customizeStatsJSON `json:"customize"`
		TrafficVersion uint64             `json:"traffic_version"`
		UnitWeights    bool               `json:"unit_weights"`
		QueriesServed  int64              `json:"queries_served"`
		MaxConcurrent  int                `json:"max_concurrent"`
		Admission      admitStatsJSON     `json:"admission"`
		Cache          *cacheStatsJSON    `json:"cache,omitempty"`
		Persist        *persistStats      `json:"persist,omitempty"`
		Mesh           *meshStatsJSON     `json:"mesh,omitempty"`
		PooledIdle     int                `json:"pooled_sessions"`
		Discarded      int64              `json:"poisoned_sessions_discarded"`
		PoolProduced   int64              `json:"prepool_produced"`
		PoolHits       int64              `json:"prepool_hits"`
		PoolMisses     int64              `json:"prepool_misses"`
		Metrics        map[string]float64 `json:"metrics"`
	}{
		s.fed.Graph().NumVertices(), s.fed.Graph().NumArcs(), s.fed.Silos(),
		s.fed.HasIndex(), s.fed.IndexBuilding(), st.Shortcuts, st.SAC.Compares,
		custBlock,
		s.fed.TrafficVersion(), s.unitWeights,
		s.queries.Load(), cap(s.sem),
		admitStatsJSON{Limit: gs.Limit, Depth: gs.Depth, Admitted: gs.Admitted, Shed: gs.Shed},
		cacheBlock, persistBlock, s.meshBlock(),
		s.pooledIdle(), s.discarded.Load(),
		pool.Produced, pool.Hits, pool.Misses,
		s.fed.Metrics().Snapshot(),
	})
}

// handleMetrics serves the federation registry in Prometheus text exposition
// format (version 0.0.4). Everything — MPC counters, per-kind query metrics,
// session-pool and HTTP metrics — lives in the one registry.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.fed.Metrics().WriteText(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
