package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	fedroad "repro"
	"repro/internal/graph"
)

func testServer(t *testing.T) (*httptest.Server, *fedroad.Federation, fedroad.Weights) {
	t.Helper()
	g, w0 := fedroad.GenerateRoadNetwork(250, 31)
	silosW := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 32)
	fed, err := fedroad.New(g, w0, silosW, fedroad.Config{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	joint := make(fedroad.Weights, len(w0))
	for _, s := range silosW {
		for a, w := range s {
			joint[a] += w
		}
	}
	ts := httptest.NewServer(newServer(fed, 8).routes())
	t.Cleanup(ts.Close)
	return ts, fed, joint
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestRouteEndpoint(t *testing.T) {
	ts, fed, joint := testServer(t)
	var resp routeResponse
	r := getJSON(t, ts.URL+"/route?s=3&t=200", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if !resp.Found || resp.Segments != len(resp.Path)-1 {
		t.Fatalf("bad response: %+v", resp)
	}
	want, _ := graph.DijkstraTo(fed.Graph(), joint, 3, 200)
	got := resp.MeanTravelSec * float64(fed.Silos()) * 1000
	if int64(got+0.5) != want {
		t.Fatalf("route cost %f, want %d", got, want)
	}
	if resp.FedSACs == 0 || resp.MPCRounds == 0 {
		t.Fatalf("missing MPC accounting: %+v", resp)
	}
	// Option pass-through.
	r = getJSON(t, ts.URL+"/route?s=3&t=200&queue=tm-tree&estimator=fed-amps&batched=1", &resp)
	if r.StatusCode != http.StatusOK || !resp.Found {
		t.Fatalf("batched route failed: %d %+v", r.StatusCode, resp)
	}
}

func TestRouteValidation(t *testing.T) {
	ts, _, _ := testServer(t)
	for _, q := range []string{
		"/route?t=5",                 // missing s
		"/route?s=5",                 // missing t
		"/route?s=-1&t=5",            // negative
		"/route?s=5&t=999999",        // out of range
		"/route?s=a&t=5",             // not a number
		"/route?s=1&t=2&queue=bogus", // bad queue
	} {
		if r := getJSON(t, ts.URL+q, nil); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, r.StatusCode)
		}
	}
}

func TestKNNEndpoint(t *testing.T) {
	ts, fed, joint := testServer(t)
	var resp struct {
		Results []routeResponse `json:"results"`
		FedSACs int64           `json:"fed_sacs"`
	}
	r := getJSON(t, ts.URL+"/knn?s=10&k=5", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if len(resp.Results) != 5 || resp.FedSACs == 0 {
		t.Fatalf("bad kNN response: %+v", resp)
	}
	full := graph.Dijkstra(fed.Graph(), joint, 10)
	for _, rr := range resp.Results {
		tgt := rr.Path[len(rr.Path)-1]
		want := float64(full.Dist[tgt]) / float64(fed.Silos()) / 1000
		if diff := rr.MeanTravelSec - want; diff > 0.001 || diff < -0.001 {
			t.Fatalf("kNN dist to %d: %f, want %f", tgt, rr.MeanTravelSec, want)
		}
	}
	if r := getJSON(t, ts.URL+"/knn?s=10&k=0", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatal("k=0 accepted")
	}
}

func TestTrafficEndpoint(t *testing.T) {
	ts, fed, _ := testServer(t)
	// Route before the jam.
	var before routeResponse
	getJSON(t, ts.URL+"/route?s=0&t=120", &before)

	// Jam every segment of that route on all silos.
	var changes []trafficChange
	for i := 0; i+1 < len(before.Path); i++ {
		a := fed.Graph().FindArc(before.Path[i], before.Path[i+1])
		for p := 0; p < fed.Silos(); p++ {
			changes = append(changes, trafficChange{Silo: p, Arc: a, TravelMs: 500000})
		}
	}
	body, _ := json.Marshal(changes)
	resp, err := http.Post(ts.URL+"/traffic", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traffic update status %d", resp.StatusCode)
	}
	var upd struct {
		Applied int `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&upd); err != nil {
		t.Fatal(err)
	}
	if upd.Applied != len(changes) {
		t.Fatalf("applied %d of %d", upd.Applied, len(changes))
	}

	// Consistency after the update: indexed route equals flat route.
	var fast, slow routeResponse
	getJSON(t, ts.URL+"/route?s=0&t=120", &fast)
	getJSON(t, ts.URL+"/route?s=0&t=120&noindex=1&estimator=none&queue=heap", &slow)
	if fast.MeanTravelSec != slow.MeanTravelSec {
		t.Fatalf("post-update divergence: %f vs %f", fast.MeanTravelSec, slow.MeanTravelSec)
	}
}

func TestTrafficValidation(t *testing.T) {
	ts, _, _ := testServer(t)
	for _, body := range []string{
		`not json`,
		`[{"silo":99,"arc":0,"travel_ms":1000}]`,
		`[{"silo":0,"arc":999999,"travel_ms":1000}]`,
		`[{"silo":0,"arc":0,"travel_ms":0}]`,
		`[{"silo":-1,"arc":0,"travel_ms":1000}]`,
		`[{"silo":0,"arc":-1,"travel_ms":1000}]`,
		`[{"silo":0,"arc":0,"travel_ms":4294967296}]`, // >= MaxTravelMs: would panic the weight setter
	} {
		resp, err := http.Post(ts.URL+"/traffic", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	ts, fed, _ := testServer(t)
	var st struct {
		Vertices  int  `json:"vertices"`
		HasIndex  bool `json:"has_index"`
		Shortcuts int  `json:"shortcuts"`
	}
	if r := getJSON(t, ts.URL+"/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", r.StatusCode)
	}
	if st.Vertices != fed.Graph().NumVertices() || !st.HasIndex || st.Shortcuts == 0 {
		t.Fatalf("bad stats: %+v", st)
	}
	if r := getJSON(t, ts.URL+"/healthz", nil); r.StatusCode != http.StatusOK {
		t.Fatal("healthz failed")
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts, fed, _ := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := i % fed.Graph().NumVertices()
			tt := (i * 37) % fed.Graph().NumVertices()
			resp, err := http.Get(fmt.Sprintf("%s/route?s=%d&t=%d", ts.URL, s, tt))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
