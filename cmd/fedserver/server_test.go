package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	fedroad "repro"
	"repro/internal/graph"
	"repro/internal/transport"
)

// timeoutErr is a minimal net.Error with Timeout() true — the shape a
// socket deadline expiry takes inside a *net.OpError.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func testServer(t *testing.T) (*httptest.Server, *fedroad.Federation, fedroad.Weights) {
	t.Helper()
	g, w0 := fedroad.GenerateRoadNetwork(250, 31)
	silosW := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 32)
	fed, err := fedroad.New(g, w0, silosW, fedroad.Config{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	joint := make(fedroad.Weights, len(w0))
	for _, s := range silosW {
		for a, w := range s {
			joint[a] += w
		}
	}
	ts := httptest.NewServer(newServer(fed, 8).routes())
	t.Cleanup(ts.Close)
	return ts, fed, joint
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestRouteEndpoint(t *testing.T) {
	ts, fed, joint := testServer(t)
	var resp routeResponse
	r := getJSON(t, ts.URL+"/route?s=3&t=200", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if !resp.Found || resp.Segments != len(resp.Path)-1 {
		t.Fatalf("bad response: %+v", resp)
	}
	want, _ := graph.DijkstraTo(fed.Graph(), joint, 3, 200)
	got := resp.MeanTravelSec * float64(fed.Silos()) * 1000
	if int64(got+0.5) != want {
		t.Fatalf("route cost %f, want %d", got, want)
	}
	if resp.FedSACs == 0 || resp.MPCRounds == 0 {
		t.Fatalf("missing MPC accounting: %+v", resp)
	}
	// Option pass-through.
	r = getJSON(t, ts.URL+"/route?s=3&t=200&queue=tm-tree&estimator=fed-amps&batched=1", &resp)
	if r.StatusCode != http.StatusOK || !resp.Found {
		t.Fatalf("batched route failed: %d %+v", r.StatusCode, resp)
	}
}

func TestRouteValidation(t *testing.T) {
	ts, _, _ := testServer(t)
	for _, q := range []string{
		"/route?t=5",                 // missing s
		"/route?s=5",                 // missing t
		"/route?s=-1&t=5",            // negative
		"/route?s=5&t=999999",        // out of range
		"/route?s=a&t=5",             // not a number
		"/route?s=1&t=2&queue=bogus", // bad queue
	} {
		if r := getJSON(t, ts.URL+q, nil); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, r.StatusCode)
		}
	}
}

func TestKNNEndpoint(t *testing.T) {
	ts, fed, joint := testServer(t)
	var resp knnResponse
	r := getJSON(t, ts.URL+"/knn?s=10&k=5", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("bad kNN response: %+v", resp)
	}
	if resp.Stats.FedSACs == 0 || resp.Stats.MPCRounds == 0 || resp.Stats.SettledVerts == 0 {
		t.Fatalf("missing aggregate kNN stats: %+v", resp.Stats)
	}
	full := graph.Dijkstra(fed.Graph(), joint, 10)
	for _, rr := range resp.Results {
		tgt := rr.Path[len(rr.Path)-1]
		want := float64(full.Dist[tgt]) / float64(fed.Silos()) / 1000
		if diff := rr.MeanTravelSec - want; diff > 0.001 || diff < -0.001 {
			t.Fatalf("kNN dist to %d: %f, want %f", tgt, rr.MeanTravelSec, want)
		}
	}
	if r := getJSON(t, ts.URL+"/knn?s=10&k=0", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatal("k=0 accepted")
	}
}

// TestKNNNoFabricatedStats pins the satellite fix: per-neighbor entries carry
// route fields only — the old handler rendered each route through
// toResponse(rt, Stats{}), publishing fabricated zeroed fed_sacs/mpc_rounds
// per result. Cost counters must appear exactly once, under "stats".
func TestKNNNoFabricatedStats(t *testing.T) {
	ts, _, _ := testServer(t)
	var raw struct {
		Results []map[string]any `json:"results"`
		Stats   map[string]any   `json:"stats"`
	}
	if r := getJSON(t, ts.URL+"/knn?s=10&k=3", &raw); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if len(raw.Results) == 0 {
		t.Fatal("no results")
	}
	for i, rr := range raw.Results {
		for _, key := range []string{"fed_sacs", "mpc_rounds", "mpc_bytes", "settled_vertices", "local_us"} {
			if _, present := rr[key]; present {
				t.Errorf("results[%d] carries per-route stat %q (fabricated in the old API)", i, key)
			}
		}
	}
	if v, ok := raw.Stats["fed_sacs"].(float64); !ok || v == 0 {
		t.Errorf("aggregate stats.fed_sacs missing or zero: %v", raw.Stats["fed_sacs"])
	}
}

// TestKNNBatchedReducesRounds pins the tentpole's motivating bug: batched=1
// on /knn used to be dropped on the floor. With the option honored, the
// TM-tree's tournament comparisons run as batched secure comparisons — one
// protocol instance per tournament level — so the same query pays strictly
// fewer MPC rounds (sequential Fed-SAC invocations) than its unbatched twin.
func TestKNNBatchedReducesRounds(t *testing.T) {
	ts, _, _ := testServer(t)
	var plain, batched knnResponse
	if r := getJSON(t, ts.URL+"/knn?s=10&k=5", &plain); r.StatusCode != http.StatusOK {
		t.Fatalf("plain status %d", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/knn?s=10&k=5&batched=1", &batched); r.StatusCode != http.StatusOK {
		t.Fatalf("batched status %d", r.StatusCode)
	}
	if len(plain.Results) != len(batched.Results) {
		t.Fatalf("result count diverged: %d vs %d", len(plain.Results), len(batched.Results))
	}
	if plain.Stats.MPCRounds == 0 || batched.Stats.MPCRounds == 0 {
		t.Fatalf("rounds not accounted: plain %d, batched %d", plain.Stats.MPCRounds, batched.Stats.MPCRounds)
	}
	if batched.Stats.MPCRounds >= plain.Stats.MPCRounds {
		t.Fatalf("batched=1 did not reduce MPC rounds: batched %d >= plain %d (option dropped?)",
			batched.Stats.MPCRounds, plain.Stats.MPCRounds)
	}
}

// TestKNNRejectsEstimator: estimator options cannot apply to targetless
// Fed-SSSP and must be rejected loudly (400), not silently ignored.
func TestKNNRejectsEstimator(t *testing.T) {
	ts, _, _ := testServer(t)
	if r := getJSON(t, ts.URL+"/knn?s=10&k=3&estimator=fed-amps", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("estimator on kNN: status %d, want 400", r.StatusCode)
	}
	// batched=1 with a non-TM-tree queue is likewise a client mistake.
	if r := getJSON(t, ts.URL+"/knn?s=10&k=3&batched=1&queue=heap", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("batched+heap on kNN: status %d, want 400", r.StatusCode)
	}
}

func TestQueryStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrap: %w", fedroad.ErrInvalidQuery), http.StatusBadRequest},
		{fmt.Errorf("wrap: %w", fedroad.ErrSessionPoisoned), http.StatusServiceUnavailable},
		{errServerClosed, http.StatusServiceUnavailable},
		// An unclassified error is an internal failure, not the client's
		// fault: the old default of 400 hid engine bugs as user errors.
		{errors.New("engine exploded"), http.StatusInternalServerError},

		// Mesh transport taxonomy. A lane round timeout — the exact error
		// shape LaneConn.Recv produces when a silo stalls — is a 504.
		{fmt.Errorf("transport: recv from party 2 (lane 17): %w", transport.ErrRoundTimeout), http.StatusGatewayTimeout},
		// A link declared dead mid-round surfaces wrapped in
		// ErrSessionPoisoned (the engine poisons fast on ErrPeerDown): 503,
		// retry on a fresh session over the redialed link.
		{fmt.Errorf("%w: transport: recv from party 1 (lane 17, link gen 2): %v",
			fedroad.ErrSessionPoisoned, transport.ErrPeerDown), http.StatusServiceUnavailable},
		// A raw peer-down error (session dial racing a redial) maps the
		// same way instead of masquerading as an internal failure.
		{fmt.Errorf("transport: send to party 1 (lane 3): %w", transport.ErrPeerDown), http.StatusServiceUnavailable},
		// Socket-level deadline expiries (e.g. a stalled mTLS link hitting
		// its heartbeat write budget) count as timeouts too.
		{fmt.Errorf("mesh write: %w", &net.OpError{Op: "write", Err: timeoutErr{}}), http.StatusGatewayTimeout},
		// mTLS handshake rejections and redial dial failures carry no
		// taxonomy mark: internal failure, not the client's fault.
		{errors.New("transport: dial peer 2: remote error: tls: bad certificate"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := queryStatus(c.err); got != c.want {
			t.Errorf("queryStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// parseMetrics reads Prometheus text exposition into name{labels} → value.
func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseMetrics(t, string(body))
}

// TestMetricsEndpoint scrapes /metrics around a batch of queries and checks
// that the exposition parses and the core counters increase monotonically.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := testServer(t)
	before := scrape(t, ts.URL)
	for _, k := range []string{
		"fedroad_mpc_compares_total",
		`fedroad_queries_total{kind="spsp"}`,
		`fedroad_queries_total{kind="sssp"}`,
		"fedserver_sessions_checked_out_total",
		"fedroad_graph_vertices",
	} {
		if _, ok := before[k]; !ok {
			t.Fatalf("metric %s missing from exposition", k)
		}
	}

	getJSON(t, ts.URL+"/route?s=3&t=200", nil)
	getJSON(t, ts.URL+"/knn?s=10&k=3", nil)
	getJSON(t, ts.URL+"/route?s=1&t=2&queue=bogus", nil) // counted as an error

	after := scrape(t, ts.URL)
	monotone := []string{
		"fedroad_mpc_compares_total",
		"fedroad_mpc_rounds_total",
		`fedroad_queries_total{kind="spsp"}`,
		`fedroad_queries_total{kind="sssp"}`,
		`fedroad_query_seconds_count{kind="spsp"}`,
		`fedroad_query_settled_vertices_total{kind="sssp"}`,
		"fedserver_sessions_checked_out_total",
		`fedserver_http_requests_total{code="2xx",path="/route"}`,
		`fedserver_http_request_seconds_count{path="/knn"}`,
	}
	for _, k := range monotone {
		if after[k] <= before[k] {
			t.Errorf("%s did not increase: %v -> %v", k, before[k], after[k])
		}
	}
	if inc := after[`fedroad_query_errors_total{kind="spsp"}`] - before[`fedroad_query_errors_total{kind="spsp"}`]; inc != 1 {
		t.Errorf("spsp error counter moved by %v, want 1", inc)
	}
	if inc := after[`fedserver_http_requests_total{code="4xx",path="/route"}`] - before[`fedserver_http_requests_total{code="4xx",path="/route"}`]; inc != 1 {
		t.Errorf("/route 4xx counter moved by %v, want 1", inc)
	}
}

// TestStatsIncludesMetricsSnapshot: /stats folds the registry snapshot in.
func TestStatsIncludesMetricsSnapshot(t *testing.T) {
	ts, _, _ := testServer(t)
	getJSON(t, ts.URL+"/route?s=3&t=200", nil)
	var st struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if r := getJSON(t, ts.URL+"/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", r.StatusCode)
	}
	if st.Metrics == nil {
		t.Fatal("/stats has no metrics snapshot")
	}
	if st.Metrics[`fedroad_queries_total{kind="spsp"}`] < 1 {
		t.Errorf("snapshot missing query counter: %v", st.Metrics)
	}
}

// TestPprofGated: /debug/pprof/* exists only with -pprof.
func TestPprofGated(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without -pprof")
	}

	g, w0 := fedroad.GenerateRoadNetwork(60, 7)
	silosW := fedroad.SimulateCongestion(w0, 2, fedroad.Moderate, 8)
	fed, err := fedroad.New(g, w0, silosW, fedroad.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(fed, 2)
	srv.pprof = true
	ts2 := httptest.NewServer(srv.routes())
	t.Cleanup(func() { ts2.Close(); srv.Close(); fed.Close() })
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d with -pprof", resp.StatusCode)
	}
}

func TestTrafficEndpoint(t *testing.T) {
	ts, fed, _ := testServer(t)
	// Route before the jam.
	var before routeResponse
	getJSON(t, ts.URL+"/route?s=0&t=120", &before)

	// Jam every segment of that route on all silos.
	var changes []trafficChange
	for i := 0; i+1 < len(before.Path); i++ {
		a := fed.Graph().FindArc(before.Path[i], before.Path[i+1])
		for p := 0; p < fed.Silos(); p++ {
			changes = append(changes, trafficChange{Silo: p, Arc: a, TravelMs: 500000})
		}
	}
	body, _ := json.Marshal(changes)
	resp, err := http.Post(ts.URL+"/traffic", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traffic update status %d", resp.StatusCode)
	}
	var upd struct {
		Applied int `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&upd); err != nil {
		t.Fatal(err)
	}
	if upd.Applied != len(changes) {
		t.Fatalf("applied %d of %d", upd.Applied, len(changes))
	}

	// Consistency after the update: indexed route equals flat route.
	var fast, slow routeResponse
	getJSON(t, ts.URL+"/route?s=0&t=120", &fast)
	getJSON(t, ts.URL+"/route?s=0&t=120&noindex=1&estimator=none&queue=heap", &slow)
	if fast.MeanTravelSec != slow.MeanTravelSec {
		t.Fatalf("post-update divergence: %f vs %f", fast.MeanTravelSec, slow.MeanTravelSec)
	}
}

func TestTrafficValidation(t *testing.T) {
	ts, _, _ := testServer(t)
	for _, body := range []string{
		`not json`,
		`[{"silo":99,"arc":0,"travel_ms":1000}]`,
		`[{"silo":0,"arc":999999,"travel_ms":1000}]`,
		`[{"silo":0,"arc":0,"travel_ms":0}]`,
		`[{"silo":-1,"arc":0,"travel_ms":1000}]`,
		`[{"silo":0,"arc":-1,"travel_ms":1000}]`,
		`[{"silo":0,"arc":0,"travel_ms":4294967296}]`, // >= MaxTravelMs: would panic the weight setter
	} {
		resp, err := http.Post(ts.URL+"/traffic", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	ts, fed, _ := testServer(t)
	var st struct {
		Vertices  int  `json:"vertices"`
		HasIndex  bool `json:"has_index"`
		Shortcuts int  `json:"shortcuts"`
	}
	if r := getJSON(t, ts.URL+"/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", r.StatusCode)
	}
	if st.Vertices != fed.Graph().NumVertices() || !st.HasIndex || st.Shortcuts == 0 {
		t.Fatalf("bad stats: %+v", st)
	}
	if r := getJSON(t, ts.URL+"/healthz", nil); r.StatusCode != http.StatusOK {
		t.Fatal("healthz failed")
	}
}

// TestStatsReportsIndexBuilding: /stats carries the index_building flag —
// false at rest, observable as true while an off-lock rebuild runs (the
// rebuild does not block the /stats request), and false again once the
// build returns.
func TestStatsReportsIndexBuilding(t *testing.T) {
	ts, fed, _ := testServer(t)
	read := func() (building, present bool) {
		t.Helper()
		var raw map[string]any
		if r := getJSON(t, ts.URL+"/stats", &raw); r.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", r.StatusCode)
		}
		v, ok := raw["index_building"]
		b, _ := v.(bool)
		return b, ok
	}
	if b, ok := read(); !ok || b {
		t.Fatalf("index_building present=%v value=%v, want present and false at rest", ok, b)
	}

	done := make(chan error, 1)
	go func() { done <- fed.BuildIndexWith(fedroad.IndexParams{Workers: 2}) }()
	observed := false
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// Whether the flag was caught mid-flight is timing-dependent on
			// fast builds; the rest-state transitions are the contract.
			if b, ok := read(); !ok || b {
				t.Fatalf("index_building=%v after build returned, want false", b)
			}
			if !observed {
				t.Log("build finished before /stats observed it in flight (ok)")
			}
			return
		default:
			if b, _ := read(); b {
				observed = true
			}
		}
	}
}

// TestStatsCustomizeBlock: /stats surfaces the contract/customize pipeline
// (skeleton presence, customized-index flag, pass count and last-pass cost)
// and /metrics exports the corresponding counters.
func TestStatsCustomizeBlock(t *testing.T) {
	g, w0 := fedroad.GenerateRoadNetwork(120, 41)
	silosW := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 42)
	fed, err := fedroad.New(g, w0, silosW, fedroad.Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.BuildSkeleton(); err != nil {
		t.Fatal(err)
	}
	if err := fed.CustomizeIndex(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(fed, 4).routes())
	t.Cleanup(ts.Close)

	var st struct {
		HasIndex  bool               `json:"has_index"`
		Customize customizeStatsJSON `json:"customize"`
	}
	if r := getJSON(t, ts.URL+"/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", r.StatusCode)
	}
	if !st.HasIndex {
		t.Fatal("has_index false after CustomizeIndex")
	}
	c := st.Customize
	if !c.HasSkeleton || !c.IndexCustomized {
		t.Fatalf("customize block missing skeleton/customized flags: %+v", c)
	}
	if c.Passes != 1 || c.LastMPCRounds <= 0 {
		t.Fatalf("customize block counters: %+v", c)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{
		"fedroad_index_customizes_total 1",
		"fedroad_index_customize_mpc_rounds_total",
		"fedroad_index_customize_seconds",
	} {
		if !strings.Contains(string(body), metric) {
			t.Fatalf("/metrics missing %q", metric)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts, fed, _ := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := i % fed.Graph().NumVertices()
			tt := (i * 37) % fed.Graph().NumVertices()
			resp, err := http.Get(fmt.Sprintf("%s/route?s=%d&t=%d", ts.URL, s, tt))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
