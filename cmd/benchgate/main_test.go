package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Reports tagged with another experiment must come back as errSkip — a clean
// pass, not a gate failure. The soak report is the case that matters: CI
// uploads BENCH_soak.json next to BENCH_build.json, and a glob that feeds
// both into benchgate must not fail the build.
func TestLoadSkipsForeignExperiments(t *testing.T) {
	for _, exp := range []string{"soak", "large"} {
		path := writeTemp(t, "r.json", `{"experiment":"`+exp+`","rows":[]}`)
		_, _, err := load(path)
		var skip errSkip
		if !errors.As(err, &skip) {
			t.Fatalf("experiment %q: err %v, want errSkip", exp, err)
		}
		if skip.experiment != exp {
			t.Fatalf("errSkip names %q, want %q", skip.experiment, exp)
		}
	}
}

func TestLoadAcceptsIndexBuildReports(t *testing.T) {
	// Both the tagged and the legacy untagged form load.
	for _, content := range []string{
		`{"experiment":"index-build","silos":3,"rows":[{"dataset":"CAL-S","workers":1,"batched":true,"mpc_rounds":10}]}`,
		`{"silos":3,"rows":[{"dataset":"CAL-S","workers":1,"batched":true,"mpc_rounds":10}]}`,
	} {
		path := writeTemp(t, "r.json", content)
		rows, order, err := load(path)
		if err != nil {
			t.Fatalf("index-build report rejected: %v", err)
		}
		if len(rows) != 1 || len(order) != 1 {
			t.Fatalf("loaded %d rows, want 1", len(rows))
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := writeTemp(t, "r.json", `{nope`)
	if _, _, err := load(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	var skip errSkip
	if _, _, err := load(path); errors.As(err, &skip) {
		t.Fatal("malformed JSON classified as a skippable foreign report")
	}
	if _, _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadRejectsDuplicateRows(t *testing.T) {
	path := writeTemp(t, "r.json",
		`{"experiment":"index-build","rows":[{"dataset":"CAL-S","workers":1,"batched":true},{"dataset":"CAL-S","workers":1,"batched":true}]}`)
	if _, _, err := load(path); err == nil {
		t.Fatal("duplicate rows accepted")
	}
}
