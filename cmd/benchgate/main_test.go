package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Reports tagged with another experiment must come back as errSkip — a clean
// pass, not a gate failure. The soak report is the case that matters: CI
// uploads BENCH_soak.json next to BENCH_build.json, and a glob that feeds
// both into benchgate must not fail the build.
func TestLoadSkipsForeignExperiments(t *testing.T) {
	for _, exp := range []string{"soak", "large"} {
		path := writeTemp(t, "r.json", `{"experiment":"`+exp+`","rows":[]}`)
		_, _, err := load(path)
		var skip errSkip
		if !errors.As(err, &skip) {
			t.Fatalf("experiment %q: err %v, want errSkip", exp, err)
		}
		if skip.experiment != exp {
			t.Fatalf("errSkip names %q, want %q", skip.experiment, exp)
		}
	}
}

func TestLoadAcceptsIndexBuildReports(t *testing.T) {
	// Both the tagged and the legacy untagged form load.
	for _, content := range []string{
		`{"experiment":"index-build","silos":3,"rows":[{"dataset":"CAL-S","workers":1,"batched":true,"mpc_rounds":10}]}`,
		`{"silos":3,"rows":[{"dataset":"CAL-S","workers":1,"batched":true,"mpc_rounds":10}]}`,
	} {
		path := writeTemp(t, "r.json", content)
		rows, order, err := load(path)
		if err != nil {
			t.Fatalf("index-build report rejected: %v", err)
		}
		if len(rows) != 1 || len(order) != 1 {
			t.Fatalf("loaded %d rows, want 1", len(rows))
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := writeTemp(t, "r.json", `{nope`)
	if _, _, err := load(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	var skip errSkip
	if _, _, err := load(path); errors.As(err, &skip) {
		t.Fatal("malformed JSON classified as a skippable foreign report")
	}
	if _, _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadRejectsDuplicateRows(t *testing.T) {
	path := writeTemp(t, "r.json",
		`{"experiment":"index-build","rows":[{"dataset":"CAL-S","workers":1,"batched":true},{"dataset":"CAL-S","workers":1,"batched":true}]}`)
	if _, _, err := load(path); err == nil {
		t.Fatal("duplicate rows accepted")
	}
}

// A customize row at the same (dataset, workers, batched) as a build row is
// NOT a duplicate — the customize flag is part of the row identity.
func TestLoadDistinguishesCustomizeRows(t *testing.T) {
	path := writeTemp(t, "r.json",
		`{"experiment":"index-build","rows":[
			{"dataset":"CAL-S","workers":1,"batched":true,"mpc_rounds":100},
			{"dataset":"CAL-S","workers":1,"batched":true,"customize":true,"mpc_rounds":10}]}`)
	rows, order, err := load(path)
	if err != nil {
		t.Fatalf("customize + build rows rejected as duplicates: %v", err)
	}
	if len(rows) != 2 || len(order) != 2 {
		t.Fatalf("loaded %d rows, want 2", len(rows))
	}
}

// customizeGate: reports with no customize rows at all must come back as
// errSkip — older report formats are not failed over data they do not carry.
func TestCustomizeGateSkipsReportsWithoutCustomizeData(t *testing.T) {
	path := writeTemp(t, "r.json",
		`{"experiment":"index-build","rows":[{"dataset":"CAL-S","workers":1,"batched":true,"mpc_rounds":100}]}`)
	rows, order, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	_, failures, err := customizeGate(rows, order)
	var skip errSkip
	if !errors.As(err, &skip) {
		t.Fatalf("err %v, want errSkip", err)
	}
	if len(failures) != 0 {
		t.Fatalf("skipped gate produced failures: %v", failures)
	}
}

// customizeGate: the 25% threshold is a strict 4×customize < build integer
// comparison against the sequential batched build of the same dataset.
func TestCustomizeGateEnforces25Percent(t *testing.T) {
	mk := func(custRounds int) string {
		return writeTemp(t, "r.json", `{"experiment":"index-build","rows":[
			{"dataset":"CAL-S","workers":1,"batched":true,"mpc_rounds":1000},
			{"dataset":"CAL-S","workers":8,"batched":true,"customize":true,"mpc_rounds":`+itoa(custRounds)+`}]}`)
	}
	for _, tc := range []struct {
		rounds int
		pass   bool
	}{
		{249, true},  // strictly under 25%
		{250, false}, // exactly 25% — 4*250 == 1000, not < — fails
		{999, false},
	} {
		path := mk(tc.rounds)
		rows, order, err := load(path)
		if err != nil {
			t.Fatal(err)
		}
		lines, failures, err := customizeGate(rows, order)
		if err != nil {
			t.Fatalf("rounds=%d: unexpected error %v", tc.rounds, err)
		}
		if len(lines) != 1 {
			t.Fatalf("rounds=%d: %d summary lines, want 1", tc.rounds, len(lines))
		}
		if got := len(failures) == 0; got != tc.pass {
			t.Fatalf("rounds=%d: pass=%v, want %v (failures: %v)", tc.rounds, got, tc.pass, failures)
		}
	}
}

// customizeGate: a customize row without its dataset's sequential batched
// build row is a hard failure (the invariant cannot be evaluated).
func TestCustomizeGateFailsWithoutBuildRow(t *testing.T) {
	path := writeTemp(t, "r.json",
		`{"experiment":"index-build","rows":[{"dataset":"CAL-S","workers":8,"batched":true,"customize":true,"mpc_rounds":10}]}`)
	rows, order, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	_, failures, err := customizeGate(rows, order)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(failures) != 1 {
		t.Fatalf("%d failures, want 1", len(failures))
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
