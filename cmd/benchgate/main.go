// Command benchgate compares a freshly generated index-build benchmark
// report (BENCH_build.json format) against a committed baseline and fails on
// performance regressions. It is the CI gate behind the word-packed Fed-SAC
// rounds: the deterministic counters — mpc_rounds above all — must never
// creep back up unnoticed.
//
// Gates, per (dataset, workers, batched) row:
//
//   - mpc_rounds: hard gate. The counter is a deterministic function of the
//     build, independent of the runner, so the tolerance (default +10%)
//     exists only to absorb intentional small drifts; any regression beyond
//     it fails the run.
//   - time_ms (modeled end-to-end: wall + simulated network): reported, but
//     advisory by default (shared CI runners are too noisy for a hard time
//     gate). Set -wall-tolerance > 0 to enforce one.
//   - within the current report, the batched workers=1 row must not spend
//     more MPC rounds than the unbatched row of the same dataset — the
//     "batching can never regress" invariant, checked against the same run
//     rather than the baseline.
//
// The comparison table is printed to stdout and, when the
// GITHUB_STEP_SUMMARY environment variable is set, appended there as
// markdown so the gate's verdict shows up on the workflow summary page.
//
// Reports from other experiments — BENCH_large.json ("large"), the serving
// soak's BENCH_soak.json ("soak") — are recognized by their experiment tag
// and skipped with a clean exit: they carry their own pass/fail criteria
// (fedbench soak itself fails on oracle or accounting violations) and must
// never trip the index-build perf gate.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/expr"
)

type rowKey struct {
	dataset   string
	workers   int
	batched   bool
	customize bool
}

// errSkip marks a well-formed report of a different experiment (e.g. the
// large-graph tier's BENCH_large.json): not an error, just not gated here.
type errSkip struct{ experiment string }

func (e errSkip) Error() string { return fmt.Sprintf("experiment %q is not gated", e.experiment) }

func load(path string) (map[rowKey]expr.BuildBenchRow, []rowKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rep expr.BuildBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Experiment != "" && rep.Experiment != "index-build" {
		return nil, nil, errSkip{rep.Experiment}
	}
	rows := make(map[rowKey]expr.BuildBenchRow, len(rep.Rows))
	var order []rowKey
	for _, r := range rep.Rows {
		k := rowKey{r.Dataset, r.Workers, r.Batched, r.Customize}
		if _, dup := rows[k]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate row %+v", path, k)
		}
		rows[k] = r
		order = append(order, k)
	}
	return rows, order, nil
}

func main() {
	var (
		basePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
		curPath  = flag.String("current", "BENCH_build.json", "freshly generated report")
		tol      = flag.Float64("tolerance", 0.10, "allowed fractional mpc_rounds growth over baseline")
		wallTol  = flag.Float64("wall-tolerance", 0, "allowed fractional wall-time growth (0 = advisory only)")
	)
	flag.Parse()

	base, order, err := load(*basePath)
	if err != nil {
		exitLoad(*basePath, err)
	}
	cur, curOrder, err := load(*curPath)
	if err != nil {
		exitLoad(*curPath, err)
	}

	var b strings.Builder
	b.WriteString("## benchgate: index-build perf vs baseline\n\n")
	fmt.Fprintf(&b, "baseline `%s` vs current `%s`, mpc_rounds tolerance +%.0f%%\n\n",
		*basePath, *curPath, *tol*100)
	b.WriteString("| dataset | workers | batched | mode | mpc_rounds (base → cur) | Δ | time ms (base → cur) | Δ | verdict |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")

	var failures []string
	for _, k := range order {
		br := base[k]
		cr, ok := cur[k]
		mode := "build"
		if k.customize {
			mode = "customize"
		}
		if !ok {
			failures = append(failures, fmt.Sprintf("row %s/workers=%d/batched=%v/%s missing from current report", k.dataset, k.workers, k.batched, mode))
			fmt.Fprintf(&b, "| %s | %d | %v | %s | %d → (missing) | — | %.1f → — | — | ❌ missing |\n",
				k.dataset, k.workers, k.batched, mode, br.MPCRounds, br.TimeMs)
			continue
		}
		roundsDelta := ratioDelta(float64(cr.MPCRounds), float64(br.MPCRounds))
		wallDelta := ratioDelta(cr.TimeMs, br.TimeMs)
		verdict := "✅"
		if float64(cr.MPCRounds) > float64(br.MPCRounds)*(1+*tol) {
			verdict = "❌ mpc_rounds regression"
			failures = append(failures, fmt.Sprintf("%s/workers=%d/batched=%v/%s: mpc_rounds %d → %d (%+.1f%%, tolerance +%.0f%%)",
				k.dataset, k.workers, k.batched, mode, br.MPCRounds, cr.MPCRounds, roundsDelta, *tol*100))
		}
		if *wallTol > 0 && cr.TimeMs > br.TimeMs*(1+*wallTol) {
			verdict = "❌ wall regression"
			failures = append(failures, fmt.Sprintf("%s/workers=%d/batched=%v/%s: wall %.1fms → %.1fms (%+.1f%%, tolerance +%.0f%%)",
				k.dataset, k.workers, k.batched, mode, br.TimeMs, cr.TimeMs, wallDelta, *wallTol*100))
		}
		fmt.Fprintf(&b, "| %s | %d | %v | %s | %d → %d | %+.1f%% | %.1f → %.1f | %+.1f%% | %s |\n",
			k.dataset, k.workers, k.batched, mode, br.MPCRounds, cr.MPCRounds, roundsDelta,
			br.TimeMs, cr.TimeMs, wallDelta, verdict)
	}

	// Same-run invariant: batching must never cost MPC rounds. Compared
	// within the current report so runner speed cannot mask or fake it.
	b.WriteString("\n### batching invariant (current run)\n\n")
	for _, k := range order {
		if k.workers != 1 || k.batched || k.customize {
			continue
		}
		unb, ok1 := cur[k]
		bat, ok2 := cur[rowKey{k.dataset, 1, true, false}]
		if !ok1 || !ok2 {
			continue
		}
		if bat.MPCRounds > unb.MPCRounds {
			failures = append(failures, fmt.Sprintf("%s: batched build spends %d MPC rounds, unbatched %d — batching regressed",
				k.dataset, bat.MPCRounds, unb.MPCRounds))
			fmt.Fprintf(&b, "- ❌ %s: batched %d rounds > unbatched %d rounds\n", k.dataset, bat.MPCRounds, unb.MPCRounds)
		} else {
			fmt.Fprintf(&b, "- ✅ %s: batched %d rounds ≤ unbatched %d rounds (%.1fx fewer)\n",
				k.dataset, bat.MPCRounds, unb.MPCRounds, safeRatio(float64(unb.MPCRounds), float64(bat.MPCRounds)))
		}
		if bat.TimeMs > unb.TimeMs {
			fmt.Fprintf(&b, "- ⚠️ %s: batched time %.1fms > unbatched %.1fms (advisory)\n", k.dataset, bat.TimeMs, unb.TimeMs)
		}
	}

	// Same-run customize invariant: refreshing the index per traffic version
	// must stay far cheaper than rebuilding it. Reports without customize rows
	// (older formats, partial runs) skip the check cleanly instead of failing.
	b.WriteString("\n### customize invariant (current run)\n\n")
	custLines, custFailures, custErr := customizeGate(cur, curOrder)
	var skip errSkip
	switch {
	case errors.As(custErr, &skip):
		fmt.Fprintf(&b, "- report lacks customize rows (%v) — invariant skipped\n", custErr)
	default:
		for _, l := range custLines {
			b.WriteString(l + "\n")
		}
		failures = append(failures, custFailures...)
	}

	if len(failures) == 0 {
		b.WriteString("\n**PASS** — no regressions.\n")
	} else {
		b.WriteString("\n**FAIL**\n\n")
		for _, f := range failures {
			fmt.Fprintf(&b, "- %s\n", f)
		}
	}

	fmt.Print(b.String())
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			f.WriteString(b.String())
			f.Close()
		}
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// customizeGate checks the same-run customize-rounds invariant: for every
// dataset carrying a customize row, the weight-customization sweep must spend
// LESS THAN 25% of the MPC rounds of that dataset's sequential batched full
// build (4×customize < build, exact integer arithmetic). Like the batching
// invariant it is judged within one report, so runner speed can neither mask
// nor fake it. A report with no customize rows at all returns errSkip: older
// report formats are not gated on data they do not carry.
func customizeGate(cur map[rowKey]expr.BuildBenchRow, order []rowKey) (lines, failures []string, err error) {
	found := false
	for _, k := range order {
		if !k.customize {
			continue
		}
		found = true
		cust := cur[k]
		build, ok := cur[rowKey{dataset: k.dataset, workers: 1, batched: true}]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: customize row has no sequential batched build row to compare against", k.dataset))
			lines = append(lines, fmt.Sprintf("- ❌ %s: missing the sequential batched build row", k.dataset))
			continue
		}
		pct := 0.0
		if build.MPCRounds > 0 {
			pct = float64(cust.MPCRounds) / float64(build.MPCRounds) * 100
		}
		if 4*cust.MPCRounds < build.MPCRounds {
			lines = append(lines, fmt.Sprintf("- ✅ %s: customize %d rounds < 25%% of full build %d rounds (%.1f%%)",
				k.dataset, cust.MPCRounds, build.MPCRounds, pct))
		} else {
			failures = append(failures, fmt.Sprintf("%s: customize spends %d MPC rounds, full build %d — refresh cost is %.1f%% of a rebuild (must be < 25%%)",
				k.dataset, cust.MPCRounds, build.MPCRounds, pct))
			lines = append(lines, fmt.Sprintf("- ❌ %s: customize %d rounds ≥ 25%% of full build %d rounds (%.1f%%)",
				k.dataset, cust.MPCRounds, build.MPCRounds, pct))
		}
	}
	if !found {
		return nil, nil, errSkip{"index-build without customize rows"}
	}
	return lines, failures, nil
}

// exitLoad terminates on a load failure: an errSkip (a report from another
// experiment, e.g. BENCH_large.json) is a clean pass — the gate only judges
// index-build reports — while anything else is a hard error.
func exitLoad(path string, err error) {
	var skip errSkip
	if errors.As(err, &skip) {
		fmt.Printf("benchgate: %s: %v — ignored\n", path, err)
		os.Exit(0)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}

func ratioDelta(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur/base - 1) * 100
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
