package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"repro/internal/mpc"
	"repro/internal/transport"
)

// meshBenchConfig parameterizes the mesh-vs-baseline throughput comparison.
type meshBenchConfig struct {
	Silos    int
	Sessions int // concurrent engine forks per variant
	Compares int // secure comparisons per session
	Seed     uint64
	TLS      *transport.TLSConfig
	// Tolerance is the acceptable relative throughput loss of the mux
	// against the per-fork-dial baseline (0.10 = within 10%).
	Tolerance float64
}

// meshVariantResult is one transport variant's measured throughput.
type meshVariantResult struct {
	Name           string  `json:"name"`
	Compares       int64   `json:"compares"`
	WallMs         int64   `json:"wall_ms"`
	ComparesPerSec float64 `json:"compares_per_sec"`
}

// meshReport is the BENCH_mesh.json payload.
type meshReport struct {
	Silos     int               `json:"silos"`
	Sessions  int               `json:"sessions"`
	TLS       bool              `json:"tls"`
	Mux       meshVariantResult `json:"mux"`
	Baseline  meshVariantResult `json:"per_fork_dial"`
	Ratio     float64           `json:"mux_over_baseline"`
	Tolerance float64           `json:"tolerance"`
	Pass      bool              `json:"pass"`
}

// runMeshVariant drives cfg.Sessions concurrent engine forks, each executing
// cfg.Compares protocol-mode secure comparisons over the dialed transport,
// verifying every comparison bit against the plaintext sum. Returns total
// compare throughput.
func runMeshVariant(name string, cfg meshBenchConfig, dial func() (mpc.ConnSet, error)) (meshVariantResult, error) {
	root, err := mpc.NewEngine(mpc.Params{
		Parties: cfg.Silos,
		Mode:    mpc.ModeProtocol,
		Seed:    cfg.Seed,
		Dial:    dial,
	})
	if err != nil {
		return meshVariantResult{}, fmt.Errorf("%s: %w", name, err)
	}
	defer root.Close()

	var wg sync.WaitGroup
	errs := make([]error, cfg.Sessions)
	start := time.Now()
	for s := 0; s < cfg.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng := root.Fork()
			defer eng.Close()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(s)))
			diffs := make([]int64, cfg.Silos)
			for i := 0; i < cfg.Compares; i++ {
				var sum int64
				for p := range diffs {
					diffs[p] = rng.Int64N(2001) - 1000
					sum += diffs[p]
				}
				got, err := eng.Compare(diffs)
				if err != nil {
					errs[s] = fmt.Errorf("%s session %d compare %d: %w", name, s, i, err)
					return
				}
				if got != (sum < 0) {
					errs[s] = fmt.Errorf("%s session %d compare %d: wrong bit", name, s, i)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return meshVariantResult{}, err
		}
	}
	total := int64(cfg.Sessions) * int64(cfg.Compares)
	return meshVariantResult{
		Name:           name,
		Compares:       total,
		WallMs:         wall.Milliseconds(),
		ComparesPerSec: float64(total) / wall.Seconds(),
	}, nil
}

// runMeshBench measures multiplexed-lane throughput against the per-fork
// fresh-mesh baseline on identical workloads. The mux must stay within
// cfg.Tolerance of the baseline (it normally wins: no dial cost per fork).
func runMeshBench(cfg meshBenchConfig, out io.Writer) (*meshReport, error) {
	if cfg.Silos < 2 {
		return nil, fmt.Errorf("mesh bench needs at least 2 silos")
	}
	// Mux variant: one shared physical mesh, a fresh lane set per fork.
	lm, err := transport.NewLocalMesh(cfg.Silos, transport.MeshOptions{TLS: cfg.TLS})
	if err != nil {
		return nil, err
	}
	defer lm.Close()
	mux, err := runMeshVariant("mux", cfg, func() (mpc.ConnSet, error) {
		conns, drain := lm.SessionConns()
		return mpc.ConnSet{Conns: conns, Drain: drain}, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "mux lanes:      %6d compares in %5dms  %.0f cmp/s (%d sessions over %d physical links/silo)\n",
		mux.Compares, mux.WallMs, mux.ComparesPerSec, cfg.Sessions, cfg.Silos-1)

	// Baseline: every fork dials its own fresh P-party TCP mesh.
	pfd := transport.NewPerForkDialer(cfg.Silos, 10*time.Second, cfg.TLS)
	base, err := runMeshVariant("per-fork-dial", cfg, func() (mpc.ConnSet, error) {
		conns, err := pfd.Dial()
		if err != nil {
			return mpc.ConnSet{}, err
		}
		return mpc.ConnSet{Conns: conns}, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "per-fork dial:  %6d compares in %5dms  %.0f cmp/s (fresh %d-socket mesh per session)\n",
		base.Compares, base.WallMs, base.ComparesPerSec, cfg.Silos*(cfg.Silos-1)/2)

	rep := &meshReport{
		Silos: cfg.Silos, Sessions: cfg.Sessions, TLS: cfg.TLS.Enabled(),
		Mux: mux, Baseline: base,
		Ratio:     mux.ComparesPerSec / base.ComparesPerSec,
		Tolerance: cfg.Tolerance,
	}
	rep.Pass = rep.Ratio >= 1-cfg.Tolerance
	fmt.Fprintf(out, "mux/baseline throughput ratio: %.2f (tolerance: ≥ %.2f)\n", rep.Ratio, 1-cfg.Tolerance)
	return rep, nil
}

// writeMeshReport persists the report JSON.
func (r *meshReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
