// Command fedbench regenerates the paper's evaluation tables and figures
// (§VIII). Every experiment prints the rows/series the corresponding table
// or figure reports; EXPERIMENTS.md records a full run.
//
// Usage:
//
//	fedbench [flags] all|fig1|tab1|fig7|fig8|fig9|tab2|fig10|fig11|fig12|ablate|bench|large|soak|mesh
//
// Examples:
//
//	fedbench all                       # full suite at default scale
//	fedbench -datasets CAL-S fig7      # one dataset
//	fedbench -max-vertices 2000 all    # scaled-down quick run
//	fedbench -json BENCH_run.json bench  # machine-readable percentile report
//	fedbench -graph usa.frgb large     # scale tier on an imported network
//
// -graph loads an imported network (cmd/import-dimacs output, binary or
// text): with large it is the measured subject; with any other experiment it
// joins the dataset list. The large experiment is the opt-in scale tier for
// ≥10^6-vertex graphs — snapshot load time and peak heap vs CSR size,
// landmark precompute at workers={1,N}, plaintext query throughput — and
// writes BENCH_large.json.
//
// The bench experiment runs the comparative sweep and emits a JSON report
// (per-configuration latency percentiles plus mean Fed-SAC/round/byte
// counts) to the -json path — the format CI archives as BENCH_*.json. The
// -json flag also works with fig7/fig8, which run the same sweep. With
// -index, bench instead measures index construction (sequential vs parallel
// contraction, batched vs per-pair Fed-SAC) and writes BENCH_build.json.
//
// -profile <prefix> wraps any experiment in a CPU profile and a final heap
// snapshot (<prefix>.cpu.pprof, <prefix>.heap.pprof) — the mode used to hunt
// per-round allocation and serialization overhead in the MPC hot path.
//
// The soak experiment is the serving-tier stress run: -duration seconds of
// queries racing traffic updates racing index rebuilds through the admission
// gate and the result cache, every response replayed against a plaintext
// staleness oracle, followed by a warm-cache vs uncached throughput
// comparison. It writes BENCH_soak.json and exits non-zero on any stale
// serve or broken shed accounting — the CI soak-smoke contract.
//
// The mesh experiment compares MPC throughput at -mesh-sessions concurrent
// sessions between the multiplexed TCP mesh (lanes over shared links) and
// the per-fork-dial baseline (a fresh socket mesh per session), optionally
// under mTLS (-tls-cert/-tls-key/-tls-ca). It writes BENCH_mesh.json and
// exits non-zero if the mux falls more than -mesh-tolerance below the
// baseline — the CI mesh throughput gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/soak"
	"repro/internal/traffic"
	"repro/internal/transport"
)

func main() {
	var (
		datasets  = flag.String("datasets", "CAL-S,BJ-S,FLA-S", "comma-separated dataset names")
		silos     = flag.Int("silos", 3, "number of data silos")
		level     = flag.String("level", "moderate", "congestion level: free|slight|moderate|heavy")
		queries   = flag.Int("queries", 20, "queries per hop group")
		groups    = flag.Int("groups", 5, "number of hop groups")
		landmarks = flag.Int("landmarks", 32, "landmark count")
		seed      = flag.Uint64("seed", 1, "random seed")
		maxV      = flag.Int("max-vertices", 0, "cap dataset sizes (0 = full scale)")
		protocol  = flag.Bool("protocol", false, "run the full MPC protocol instead of the calibrated ideal mode")
		latency   = flag.Duration("latency", 200*time.Microsecond, "modeled one-way network latency")
		bandwidth = flag.Float64("bandwidth", 1e9, "modeled bandwidth in bytes/s")
		jsonOut   = flag.String("json", "", "write a machine-readable BENCH_*.json report (bench, fig7, fig8, large)")
		index     = flag.Bool("index", false, "with bench: benchmark index construction (sequential vs parallel) instead of the query sweep")
		profile   = flag.String("profile", "", "write CPU and heap profiles to <prefix>.cpu.pprof / <prefix>.heap.pprof")
		graphFile = flag.String("graph", "", "bench an imported graph file (binary snapshot or text) alongside/instead of the synthetic datasets")
		workers   = flag.Int("workers", 0, "with large: parallel precompute workers (0 = GOMAXPROCS)")
		duration  = flag.Duration("duration", 3*time.Second, "with soak: mixed-workload phase length")

		meshSessions = flag.Int("mesh-sessions", 8, "with mesh: concurrent MPC sessions per transport variant")
		meshCompares = flag.Int("mesh-compares", 300, "with mesh: secure comparisons per session")
		meshTol      = flag.Float64("mesh-tolerance", 0.10, "with mesh: acceptable relative throughput loss of the mux vs the per-fork-dial baseline")
		tlsCert      = flag.String("tls-cert", "", "with mesh: silo certificate PEM for mutual-auth TLS on both transport variants")
		tlsKey       = flag.String("tls-key", "", "with mesh: silo private key PEM")
		tlsCA        = flag.String("tls-ca", "", "with mesh: federation CA PEM")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fedbench [flags] all|fig1|tab1|fig7|fig8|fig9|tab2|fig10|fig11|fig12|ablate|bench|large|soak|mesh")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var lvl traffic.Level
	switch strings.ToLower(*level) {
	case "free":
		lvl = traffic.Free
	case "slight":
		lvl = traffic.Slight
	case "moderate":
		lvl = traffic.Moderate
	case "heavy":
		lvl = traffic.Heavy
	default:
		fmt.Fprintf(os.Stderr, "unknown congestion level %q\n", *level)
		os.Exit(2)
	}
	mode := mpc.ModeIdeal
	if *protocol {
		mode = mpc.ModeProtocol
	}

	// The mesh tier measures transport-layer throughput (multiplexed lanes
	// over shared links vs a fresh TCP mesh per session); it does not go
	// through the Harness.
	if flag.Arg(0) == "mesh" {
		cfg := meshBenchConfig{
			Silos: *silos, Sessions: *meshSessions, Compares: *meshCompares,
			Seed: *seed, Tolerance: *meshTol,
		}
		if *tlsCert != "" || *tlsKey != "" || *tlsCA != "" {
			cfg.TLS = &transport.TLSConfig{CertFile: *tlsCert, KeyFile: *tlsKey, CAFile: *tlsCA}
		}
		rep, err := runMeshBench(cfg, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		out := *jsonOut
		if out == "" {
			out = "BENCH_mesh.json"
		}
		if err := rep.WriteFile(out); err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", out)
		if !rep.Pass {
			fmt.Fprintf(os.Stderr, "fedbench: mux throughput %.2fx baseline, below the %.2f floor\n",
				rep.Ratio, 1-*meshTol)
			os.Exit(1)
		}
		return
	}

	// The soak tier builds its own serving stack (federation + cache +
	// admission gate); it does not go through the Harness.
	if flag.Arg(0) == "soak" {
		cfg := soak.Config{Silos: *silos, Seed: *seed, Duration: *duration}
		if *maxV > 0 {
			cfg.Vertices = *maxV
		}
		rep, err := soak.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		rep.Print(os.Stdout)
		out := *jsonOut
		if out == "" {
			out = "BENCH_soak.json"
		}
		if err := rep.WriteFile(out); err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", out)
		if vs := rep.Violations(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "fedbench: soak violation: %s\n", v)
			}
			os.Exit(1)
		}
		return
	}

	// The large tier loads the graph itself (it times the load); every other
	// experiment gets an imported -graph file injected as an extra dataset.
	if flag.Arg(0) == "large" {
		rep, err := expr.RunLargeBench(expr.LargeBenchConfig{
			Path:      *graphFile,
			Silos:     *silos,
			Landmarks: *landmarks,
			Queries:   *queries,
			Workers:   *workers,
			Seed:      *seed,
			Level:     lvl,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		rep.Print(os.Stdout)
		out := *jsonOut
		if out == "" {
			out = "BENCH_large.json"
		}
		if err := rep.WriteFile(out); err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", out)
		return
	}
	dsList := strings.Split(*datasets, ",")
	var external *expr.ExternalDataset
	if *graphFile != "" {
		g, w0, err := graph.LoadFile(*graphFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		if w0 == nil {
			w0 = make(graph.Weights, g.NumArcs())
			for a := range w0 {
				w0[a] = 1
			}
		}
		name := filepath.Base(*graphFile)
		external = &expr.ExternalDataset{Name: name, G: g, W0: w0}
		dsList = append(dsList, name)
		fmt.Printf("loaded %s: %d vertices, %d arcs\n", name, g.NumVertices(), g.NumArcs())
	}

	h := expr.New(expr.Config{
		Datasets:        dsList,
		Silos:           *silos,
		Level:           lvl,
		QueriesPerGroup: *queries,
		NumGroups:       *groups,
		Landmarks:       *landmarks,
		Seed:            *seed,
		Mode:            mode,
		Net:             mpc.NetworkModel{Latency: *latency, Bandwidth: *bandwidth},
		MaxVertices:     *maxV,
		External:        external,
		Out:             os.Stdout,
	})

	// -profile wraps the whole experiment in a CPU profile and snapshots the
	// heap at the end; stopProfile is called on every exit path (os.Exit
	// skips defers).
	stopProfile := func() {}
	if *profile != "" {
		cf, err := os.Create(*profile + ".cpu.pprof")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			cf.Close()
			hf, err := os.Create(*profile + ".heap.pprof")
			if err != nil {
				fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(hf); err != nil {
				fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			}
			hf.Close()
			fmt.Printf("wrote %s.cpu.pprof and %s.heap.pprof\n", *profile, *profile)
		}
	}

	start := time.Now()
	var err error
	switch flag.Arg(0) {
	case "all":
		err = h.RunAll()
	case "fig1":
		var rows []expr.Fig1Row
		if rows, err = h.RunFig1(0, 0); err == nil {
			h.PrintFig1(rows)
		}
	case "tab1":
		var rows []expr.Tab1Row
		if rows, err = h.RunTab1(); err == nil {
			h.PrintTab1(rows)
		}
	case "fig7", "fig8":
		var res *expr.CompResult
		if res, err = h.RunComparative(); err == nil {
			if flag.Arg(0) == "fig7" {
				h.PrintFig7(res)
			} else {
				h.PrintFig8(res)
			}
			if err == nil && *jsonOut != "" {
				err = h.BenchReport(flag.Arg(0), res).WriteFile(*jsonOut)
			}
		}
	case "bench":
		if *index {
			var rep *expr.BuildBenchReport
			if rep, err = h.RunIndexBuildBench(); err == nil {
				h.PrintIndexBuildBench(rep)
				out := *jsonOut
				if out == "" {
					out = "BENCH_build.json"
				}
				if err = rep.WriteFile(out); err == nil {
					fmt.Printf("\nwrote %s\n", out)
				}
			}
			break
		}
		var res *expr.CompResult
		if res, err = h.RunComparative(); err == nil {
			h.PrintFig7(res)
			out := *jsonOut
			if out == "" {
				out = "BENCH_report.json"
			}
			if err = h.BenchReport("bench", res).WriteFile(out); err == nil {
				fmt.Printf("\nwrote %s\n", out)
			}
		}
	case "fig9":
		var res *expr.ScalResult
		if res, err = h.RunScalability(nil); err == nil {
			h.PrintFig9(res)
		}
	case "tab2":
		var rows []expr.Tab2Row
		if rows, err = h.RunTab2(); err == nil {
			h.PrintTab2(rows)
		}
	case "fig10":
		var comp *expr.CompResult
		if comp, err = h.RunComparative(); err == nil {
			h.PrintFig10(h.RunFig10(comp))
		}
	case "fig11":
		var res *expr.Fig11Result
		if res, err = h.RunFig11(0); err == nil {
			h.PrintFig11(res)
		}
	case "fig12":
		var res *expr.Fig12Result
		if res, err = h.RunFig12(); err == nil {
			h.PrintFig12(res)
		}
	case "ablate":
		var alphas []expr.AlphaRow
		if alphas, err = h.RunAlphaAblation(nil); err != nil {
			break
		}
		h.PrintAlphaAblation(alphas)
		var lms []expr.LandmarkRow
		if lms, err = h.RunLandmarkAblation(nil); err != nil {
			break
		}
		h.PrintLandmarkAblation(lms)
		var ests []expr.EstimatorRow
		if ests, err = h.RunEstimatorAblation(); err != nil {
			break
		}
		h.PrintEstimatorAblation(ests)
		var bats []expr.BatchRow
		if bats, err = h.RunBatchingAblation(); err != nil {
			break
		}
		h.PrintBatchingAblation(bats)
		var idxs []expr.IndexRow
		if idxs, err = h.RunIndexAblation(); err != nil {
			break
		}
		h.PrintIndexAblation(idxs)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", flag.Arg(0))
		os.Exit(2)
	}
	stopProfile()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
