package fedroad

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// stateFederation builds a small federation with an index and a few traffic
// updates applied, so a snapshot exercises every section (non-trivial
// version, mutated weights, index with update history).
func stateFederation(t *testing.T, seed uint64) *Federation {
	t.Helper()
	g, w0 := GenerateRoadNetwork(120, seed)
	silos := SimulateCongestion(w0, 3, Moderate, seed+1)
	f, err := New(g, w0, silos, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 0xdead))
	var ups []TrafficUpdate
	for i := 0; i < 15; i++ {
		ups = append(ups, TrafficUpdate{
			Silo:     rng.IntN(3),
			Arc:      Arc(rng.IntN(g.NumArcs())),
			TravelMs: int64(1 + rng.IntN(200000)),
		})
	}
	if _, err := f.ApplyTraffic(ups); err != nil {
		t.Fatal(err)
	}
	return f
}

// freshTwin builds a federation over the SAME topology but with untouched
// weights — the restore target, standing in for a restarted process.
func freshTwin(t *testing.T, seed uint64) *Federation {
	t.Helper()
	g, w0 := GenerateRoadNetwork(120, seed)
	silos := SimulateCongestion(w0, 3, Moderate, seed+1)
	f, err := New(g, w0, silos, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStateRoundTrip(t *testing.T) {
	src := stateFederation(t, 31)
	var buf bytes.Buffer
	if err := src.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	dst := freshTwin(t, 31)
	if dst.HasIndex() {
		t.Fatal("twin unexpectedly has an index")
	}
	restoredIndex, err := dst.RestoreState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restoredIndex || !dst.HasIndex() {
		t.Fatal("index not restored from snapshot")
	}
	if got, want := dst.TrafficVersion(), src.TrafficVersion(); got != want {
		t.Fatalf("traffic version %d after restore, want %d", got, want)
	}

	// The restored federation must answer every query exactly like the
	// original — queries agree with plaintext Dijkstra on the restored joint
	// weights, with NO index rebuild in between.
	g := src.Graph()
	joint := make(Weights, g.NumArcs())
	for p := 0; p < src.Silos(); p++ {
		for a := 0; a < g.NumArcs(); a++ {
			joint[a] += src.inner.Silo(p).Weight(Arc(a))
		}
	}
	rng := rand.New(rand.NewPCG(32, 32))
	for trial := 0; trial < 20; trial++ {
		s := Vertex(rng.IntN(g.NumVertices()))
		d := Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, d)
		route, _, err := dst.ShortestPath(s, d)
		if err != nil {
			t.Fatalf("restored ShortestPath(%d,%d): %v", s, d, err)
		}
		if want >= graph.InfCost {
			if route.Found {
				t.Fatalf("restored found a route %d→%d, oracle says unreachable", s, d)
			}
			continue
		}
		if got := JointCost(route); got != want {
			t.Fatalf("restored ShortestPath(%d,%d) joint cost %d, oracle %d", s, d, got, want)
		}
	}

	// And its index must keep supporting dynamic updates.
	if _, err := dst.ApplyTraffic([]TrafficUpdate{{Silo: 1, Arc: 3, TravelMs: 123456}}); err != nil {
		t.Fatalf("ApplyTraffic on restored federation: %v", err)
	}
}

func TestStateRoundTripWithoutIndex(t *testing.T) {
	g, w0 := GenerateRoadNetwork(60, 41)
	silos := SimulateCongestion(w0, 2, Moderate, 42)
	src, err := New(g, w0, silos)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetTraffic(0, 5, 99999); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := New(g, w0, SimulateCongestion(w0, 2, Moderate, 42))
	if err != nil {
		t.Fatal(err)
	}
	restoredIndex, err := dst.RestoreState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restoredIndex || dst.HasIndex() {
		t.Fatal("index restored from an index-free snapshot")
	}
	if dst.inner.Silo(0).Weight(5) != 99999 {
		t.Fatal("silo weight not restored")
	}
	if dst.TrafficVersion() != 1 {
		t.Fatalf("traffic version %d, want 1", dst.TrafficVersion())
	}
}

func TestRestoreRejectsWrongGraph(t *testing.T) {
	src := stateFederation(t, 51)
	var buf bytes.Buffer
	if err := src.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// A different seed gives a different topology: the fingerprint must
	// reject the snapshot before any state is touched.
	other := freshTwin(t, 52)
	verBefore := other.TrafficVersion()
	if _, err := other.RestoreState(&buf); err == nil {
		t.Fatal("snapshot restored into a different graph")
	}
	if other.TrafficVersion() != verBefore || other.HasIndex() {
		t.Fatal("failed restore mutated the federation")
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	src := stateFederation(t, 61)
	var buf bytes.Buffer
	if err := src.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, cut := range []int{0, 4, 11, 20, len(good) / 2, len(good) - 1} {
		dst := freshTwin(t, 61)
		if _, err := dst.RestoreState(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	dst := freshTwin(t, 61)
	if _, err := dst.RestoreState(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	// Zero out a weight (offset: magic+version+fp+ver+P+m = 4+4+8+8+4+4 = 32).
	bad = append([]byte{}, good...)
	for i := 32; i < 40; i++ {
		bad[i] = 0
	}
	dst = freshTwin(t, 61)
	if _, err := dst.RestoreState(bytes.NewReader(bad)); err == nil {
		t.Fatal("non-positive silo weight accepted")
	}
}
