package fedroad

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/mpc"
)

func TestSessionMatchesFederation(t *testing.T) {
	f, joint := testFederation(t, 300, 41)
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	sess := f.Session()
	defer sess.Close()
	if sess.Federation() != f {
		t.Fatal("session detached from its federation")
	}
	for _, pair := range [][2]Vertex{{0, 250}, {17, 201}, {99, 3}} {
		route, _, err := sess.ShortestPath(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		want, _ := graph.DijkstraTo(f.Graph(), joint, pair[0], pair[1])
		if !route.Found || JointCost(route) != want {
			t.Fatalf("%v: session cost %d, want %d", pair, JointCost(route), want)
		}
	}
	if sess.Stats().Compares == 0 {
		t.Fatal("session recorded no secure comparisons")
	}
}

func TestSessionsRunInParallel(t *testing.T) {
	f, joint := testFederation(t, 300, 42)
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	f.PrecomputeLandmarks()
	opts := []QueryOptions{
		{},
		{Estimator: FedAMPS, Queue: TMTree, BatchedMPC: true},
		{Estimator: FedALT, Queue: Heap},
		{Estimator: NoEstimator, Queue: LeftistHeap, NoIndex: true},
	}
	n := f.Graph().NumVertices()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := f.Session()
			defer sess.Close()
			rng := rand.New(rand.NewPCG(uint64(w), 43))
			for i := 0; i < 10; i++ {
				s := Vertex(rng.IntN(n))
				d := Vertex(rng.IntN(n))
				route, _, err := sess.ShortestPath(s, d, opts[(w+i)%len(opts)])
				if err != nil {
					t.Error(err)
					return
				}
				want, _ := graph.BidirectionalDijkstra(f.Graph(), joint, s, d)
				if route.Found {
					if JointCost(route) != want {
						t.Errorf("worker %d: %d->%d cost %d, want %d", w, s, d, JointCost(route), want)
						return
					}
				} else if want < graph.InfCost {
					t.Errorf("worker %d: %d->%d not found, want cost %d", w, s, d, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentQueriesUnderTrafficStress is the -race stress test for the
// session/locking model: query workers hammer SPSP through private sessions
// while another goroutine continuously streams traffic updates through
// ApplyTraffic. Every route is checked against a plaintext Dijkstra run on
// the exact silo-weight snapshot the query observed — the ground truth is
// materialized inside the same read-lock span as the query, so any torn
// read of weights or index would surface as a cost mismatch (and any data
// race trips the race detector).
func TestConcurrentQueriesUnderTrafficStress(t *testing.T) {
	f, _ := testFederation(t, 300, 44)
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	f.PrecomputeLandmarks()
	g := f.Graph()
	n := g.NumVertices()

	const workers = 6
	const queriesPerWorker = 10
	done := make(chan struct{})
	var updates atomic.Int64

	// Updater: random jams and recoveries, index refreshed atomically.
	var updWG sync.WaitGroup
	updWG.Add(1)
	go func() {
		defer updWG.Done()
		rng := rand.New(rand.NewPCG(99, 45))
		for {
			select {
			case <-done:
				return
			default:
			}
			batch := make([]TrafficUpdate, 0, 6)
			for j := 0; j < 6; j++ {
				batch = append(batch, TrafficUpdate{
					Silo:     rng.IntN(f.Silos()),
					Arc:      Arc(rng.IntN(g.NumArcs())),
					TravelMs: 1000 + int64(rng.IntN(400000)),
				})
			}
			if _, err := f.ApplyTraffic(batch); err != nil {
				t.Error(err)
				return
			}
			updates.Add(1)
		}
	}()

	opts := []QueryOptions{
		{Estimator: FedAMPS, Queue: TMTree, BatchedMPC: true},
		{Estimator: FedALT, Queue: Heap},
		{Estimator: NoEstimator, Queue: Heap, NoIndex: true},
		{},
	}
	var qWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		qWG.Add(1)
		go func(w int) {
			defer qWG.Done()
			sess := f.Session()
			defer sess.Close()
			rng := rand.New(rand.NewPCG(uint64(w), 46))
			for i := 0; i < queriesPerWorker; i++ {
				s := Vertex(rng.IntN(n))
				d := Vertex(rng.IntN(n))
				opt := opts[(w+i)%len(opts)]

				// Snapshot the joint weights inside the same read-lock span
				// as the query itself: this is exactly the state the
				// federation guarantees the query observes.
				f.mu.RLock()
				joint := f.inner.JointWeights()
				route, _, err := sess.shortestPathLocked(s, d, opt)
				f.mu.RUnlock()

				if err != nil {
					t.Error(err)
					return
				}
				want, _ := graph.BidirectionalDijkstra(g, joint, s, d)
				if route.Found {
					if JointCost(route) != want {
						t.Errorf("worker %d query %d (%d->%d, %+v): cost %d, plaintext %d",
							w, i, s, d, opt, JointCost(route), want)
						return
					}
				} else if want < graph.InfCost {
					t.Errorf("worker %d query %d: %d->%d unreachable, plaintext cost %d", w, i, s, d, want)
					return
				}
			}
		}(w)
	}
	qWG.Wait()
	close(done)
	updWG.Wait()
	if updates.Load() == 0 {
		t.Fatal("updater never ran — the stress test exercised nothing")
	}
	t.Logf("served %d queries across %d sessions against %d concurrent index updates",
		workers*queriesPerWorker, workers, updates.Load())
}

func TestSetTrafficValidation(t *testing.T) {
	f, _ := testFederation(t, 100, 47)
	numArcs := f.Graph().NumArcs()
	for _, c := range []struct {
		silo   int
		arc    Arc
		travel int64
	}{
		{-1, 0, 1000},
		{3, 0, 1000},
		{0, -1, 1000},
		{0, Arc(numArcs), 1000},
		{0, 0, 0},
		{0, 0, -5},
		{0, 0, MaxTravelMs},
	} {
		if err := f.SetTraffic(c.silo, c.arc, c.travel); err == nil {
			t.Errorf("SetTraffic(%d, %d, %d) accepted", c.silo, c.arc, c.travel)
		}
	}
	if err := f.SetTraffic(0, 0, 1000); err != nil {
		t.Fatalf("valid SetTraffic rejected: %v", err)
	}
}

func TestApplyTrafficRejectsBatchAtomically(t *testing.T) {
	f, _ := testFederation(t, 100, 48)
	before := f.inner.Silo(0).Weight(5)
	_, err := f.ApplyTraffic([]TrafficUpdate{
		{Silo: 0, Arc: 5, TravelMs: 77777},           // valid
		{Silo: 0, Arc: 5, TravelMs: MaxTravelMs + 1}, // invalid
	})
	if err == nil {
		t.Fatal("batch with an invalid update accepted")
	}
	if got := f.inner.Silo(0).Weight(5); got != before {
		t.Fatalf("rejected batch mutated weights: %d -> %d", before, got)
	}
}

func TestApplyTrafficRefreshesIndex(t *testing.T) {
	f, _ := testFederation(t, 250, 49)
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	before, _, err := f.ShortestPath(0, 200)
	if err != nil || !before.Found {
		t.Fatalf("no base route: %v", err)
	}
	var batch []TrafficUpdate
	for i := 0; i+1 < len(before.Path); i++ {
		a := f.Graph().FindArc(before.Path[i], before.Path[i+1])
		for p := 0; p < f.Silos(); p++ {
			batch = append(batch, TrafficUpdate{Silo: p, Arc: a, TravelMs: 900000})
		}
	}
	if _, err := f.ApplyTraffic(batch); err != nil {
		t.Fatal(err)
	}
	// Post-update consistency: the indexed route must match both the flat
	// federated search and a plaintext Dijkstra on the new joint weights.
	fast, _, err := f.ShortestPath(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := f.ShortestPath(0, 200, QueryOptions{NoIndex: true, Estimator: NoEstimator, Queue: Heap})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.DijkstraTo(f.Graph(), f.inner.JointWeights(), 0, 200)
	if JointCost(fast) != want || JointCost(slow) != want {
		t.Fatalf("post-update costs diverge: indexed %d, flat %d, plaintext %d",
			JointCost(fast), JointCost(slow), want)
	}
}

func TestPreprocessingPoolServesQueries(t *testing.T) {
	g, w0 := GenerateRoadNetwork(150, 50)
	silos := SimulateCongestion(w0, 3, Moderate, 51)
	f, err := New(g, w0, silos, Config{
		Mode: ModeProtocol, Seed: 52,
		PreprocessPool: 256, PreprocessWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	joint := make(Weights, len(w0))
	for _, s := range silos {
		for a, w := range s {
			joint[a] += w
		}
	}
	route, _, err := f.ShortestPath(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.DijkstraTo(g, joint, 0, 100)
	if !route.Found || JointCost(route) != want {
		t.Fatalf("pool-served route cost %d, want %d", JointCost(route), want)
	}
	st := f.PoolStats()
	if st.Produced == 0 || st.Hits == 0 {
		t.Fatalf("pool idle during protocol-mode query: %+v", st)
	}
	// After Close the pool stops replenishing but queries still work via the
	// dealer fallback.
	f.Close()
	route, _, err = f.ShortestPath(0, 100)
	if err != nil || !route.Found || JointCost(route) != want {
		t.Fatalf("post-Close query broken: %v cost %d, want %d", err, JointCost(route), want)
	}
}

func TestPoolStatsWithoutPool(t *testing.T) {
	f, _ := testFederation(t, 50, 53)
	if st := f.PoolStats(); st != (mpc.PoolStats{}) {
		t.Fatalf("pool stats without a pool: %+v", st)
	}
	f.Close() // must be a no-op, not a panic
}
